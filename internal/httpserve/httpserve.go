// Package httpserve is the shared HTTP lifecycle helper for the command
// layer (cmd/hybridsim's live /metrics listener, cmd/qosd's daemon): bind,
// serve in the background on a managed *http.Server, and shut down cleanly
// — no leaked `go http.Serve` goroutines, no dropped accept-loop errors.
//
// All networking lives in this package and its callers; nothing under the
// deterministic core imports it.
package httpserve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is one running HTTP listener.
type Server struct {
	// Addr is the bound listen address; with a ":0" request it carries the
	// kernel-assigned port.
	Addr net.Addr
	// Err yields the accept loop's exit: exactly one value, nil after a
	// clean Shutdown/Close (http.ErrServerClosed is mapped to nil).
	// Shutdown and Close consume it; select on Err only to watch for a
	// crash while the server should still be running.
	Err <-chan error

	srv *http.Server
}

// Start binds addr and serves h in a background goroutine. The returned
// Server owns the listener; call Shutdown (graceful) or Close (abrupt) to
// release it.
func Start(addr string, h http.Handler) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("httpserve: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: %w", err)
	}
	srv := &http.Server{
		Handler: h,
		// A stuck peer must not pin header reads forever; response timing
		// is the handler's business (long polls are expected in qosd).
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	s := &Server{Addr: ln.Addr(), Err: errCh, srv: srv}
	go func() {
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errCh <- err
	}()
	return s, nil
}

// DebugMux returns a mux serving the runtime profiling endpoints under
// /debug/pprof/ (index, cmdline, profile, symbol, trace and every runtime
// profile the index links). Handlers are registered explicitly on a private
// mux — importing net/http/pprof for its DefaultServeMux side effect would
// expose the profiles on every handler built from the default mux.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebug binds addr and serves the profiling endpoints (DebugMux) on it.
// Commands expose it behind an opt-in -debug-addr flag: the profiling
// surface stays off the serving listener and off by default.
func StartDebug(addr string) (*Server, error) {
	return Start(addr, DebugMux())
}

// Shutdown stops accepting connections and waits for in-flight requests,
// bounded by ctx. It returns the first error from the accept loop or the
// shutdown itself (nil on a clean exit).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if serveErr := <-s.Err; serveErr != nil && err == nil {
		err = serveErr
	}
	return err
}

// Close abruptly closes the listener and all connections.
func (s *Server) Close() error {
	err := s.srv.Close()
	if serveErr := <-s.Err; serveErr != nil && err == nil {
		err = serveErr
	}
	return err
}
