// Package clock abstracts the engine's time source so the same hybrid
// push/pull scheduler can run in two modes:
//
//   - Virtual — simulated time backed by internal/event's discrete-event
//     loop. Scheduling, tie-breaking and handler ordering are exactly the
//     event package's, so a simulation run through a Virtual clock is
//     bit-identical to one driving event.Simulator directly (the golden
//     determinism tests pin this).
//   - Wall — real time for the serving mode (cmd/qosd): a single goroutine
//     owns handler execution and fires callbacks when their scheduled
//     instant arrives on the machine clock, with the same (time, insertion
//     order) tie-breaking as the virtual loop.
//
// Time is measured in broadcast units in both modes; the Wall clock maps a
// unit onto a configurable wall duration. All handlers of one clock run on
// one goroutine — engines built on a Clock need no further locking.
//
// The determinism contract (DESIGN.md) confines wall-clock reads to the
// Wall implementation in wall.go; qoslint's nondeterminism rule allowlists
// exactly that file and bans time.Now/time.Since everywhere else in
// library code.
package clock

import "hybridqos/internal/event"

// Clock schedules handlers on a one-goroutine time line. Implementations
// decide how time advances: the Virtual clock jumps to the next scheduled
// event, the Wall clock follows the machine clock.
type Clock interface {
	// Now returns the current time in broadcast units.
	Now() float64
	// At schedules h to run at absolute time t and returns a Token for
	// cancellation. The virtual clock panics when t is in the past (a
	// causality bug); the wall clock clamps past instants to "now" because
	// real time advances between the caller's read and the call.
	At(t float64, h func()) Token
	// After schedules h to run delay units from Now.
	After(delay float64, h func()) Token
	// Cancel removes a scheduled handler. Cancelling an already-fired or
	// already-cancelled handler is a no-op and returns false.
	Cancel(tok Token) bool
}

// Token identifies a scheduled handler so it can be cancelled. The zero
// Token is valid and cancels nothing. A Token held past its handler's
// firing goes stale and cancels nothing.
type Token struct {
	ev event.Token // set by the virtual clock
	we *wallEvent  // set by the wall clock
}
