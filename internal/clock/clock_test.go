package clock

import (
	"sync"
	"testing"
	"time"

	"hybridqos/internal/event"
)

// TestVirtualMirrorsSimulator pins the bit-identity claim at its root: a
// schedule driven through the Virtual adapter fires in exactly the order and
// at exactly the times the raw simulator produces.
func TestVirtualMirrorsSimulator(t *testing.T) {
	run := func(at func(t float64, h func()), now func() float64, run func()) []float64 {
		var fired []float64
		at(3, func() { fired = append(fired, now()) })
		at(1, func() {
			fired = append(fired, now())
			at(1, func() { fired = append(fired, now()) }) // same-time tie
			at(2, func() { fired = append(fired, now()) })
		})
		run()
		return fired
	}

	sim := event.New()
	raw := run(func(tm float64, h func()) { sim.At(tm, h) }, sim.Now, sim.Run)

	v := NewVirtual()
	adapted := run(func(tm float64, h func()) { v.At(tm, h) }, v.Now, v.Run)

	if len(raw) != len(adapted) {
		t.Fatalf("fired %d handlers via Virtual, %d via Simulator", len(adapted), len(raw))
	}
	for i := range raw {
		if raw[i] != adapted[i] {
			t.Errorf("firing %d: Virtual at t=%g, Simulator at t=%g", i, adapted[i], raw[i])
		}
	}
}

func TestVirtualCancel(t *testing.T) {
	v := NewVirtual()
	fired := false
	tok := v.After(5, func() { fired = true })
	if !v.Cancel(tok) {
		t.Fatal("Cancel of a pending handler returned false")
	}
	if v.Cancel(tok) {
		t.Error("second Cancel returned true")
	}
	if (Token{}) != tok {
		// tok holds the stale event; cancelling the zero Token must also be
		// a no-op.
		if v.Cancel(Token{}) {
			t.Error("Cancel of the zero Token returned true")
		}
	}
	v.RunUntil(10)
	if fired {
		t.Error("cancelled handler fired")
	}
}

func TestVirtualRunUntilAdvancesClock(t *testing.T) {
	v := NewVirtual()
	v.RunUntil(42)
	if got := v.Now(); got != 42 {
		t.Errorf("Now() = %g after RunUntil(42)", got)
	}
}

// TestWallOrderAndTies checks the wall loop fires due handlers in (time,
// insertion) order even when everything is already due.
func TestWallOrderAndTies(t *testing.T) {
	w, err := NewWall(time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	// All in the past by the time the loop starts: order must be (t, seq).
	w.At(0, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	w.At(0, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	w.Submit(func() { mu.Lock(); order = append(order, 0); mu.Unlock() }) // -Inf: before both
	w.At(0, func() {
		mu.Lock()
		order = append(order, 3)
		mu.Unlock()
		close(done)
	})
	go w.Run()
	defer w.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall loop did not fire handlers")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("firing order %v, want 0,1,2,3", order)
		}
	}
}

func TestWallTimedFire(t *testing.T) {
	w, err := NewWall(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	defer w.Stop()
	fired := make(chan float64, 1)
	start := w.Now()
	w.After(20, func() { fired <- w.Now() })
	select {
	case at := <-fired:
		if at < start+20 {
			t.Errorf("handler fired at %g units, scheduled for %g", at, start+20)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed handler never fired")
	}
}

func TestWallCancel(t *testing.T) {
	w, err := NewWall(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	fired := make(chan struct{}, 1)
	tok := w.After(50, func() { fired <- struct{}{} })
	if !w.Cancel(tok) {
		t.Fatal("Cancel of a pending wall handler returned false")
	}
	if w.Cancel(tok) {
		t.Error("second Cancel returned true")
	}
	if w.Cancel(Token{}) {
		t.Error("Cancel of the zero Token returned true")
	}
	// Let a later handler pass the cancelled one's instant.
	passed := make(chan struct{})
	w.After(75, func() { close(passed) })
	select {
	case <-passed:
	case <-time.After(5 * time.Second):
		t.Fatal("wall loop stalled")
	}
	select {
	case <-fired:
		t.Error("cancelled wall handler fired")
	default:
	}
	w.Stop()
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
}

func TestWallStopIdempotent(t *testing.T) {
	w, err := NewWall(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	w.Stop()
	w.Stop()
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return")
	}
}

func TestNewWallRejectsBadUnit(t *testing.T) {
	if _, err := NewWall(0); err == nil {
		t.Error("NewWall(0) succeeded")
	}
	if _, err := NewWall(-time.Second); err == nil {
		t.Error("NewWall(-1s) succeeded")
	}
}
