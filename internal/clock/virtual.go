package clock

import "hybridqos/internal/event"

// Virtual is simulated time: a thin adapter over event.Simulator. Every
// method delegates directly — no wrapping closures, no extra allocations —
// so an engine scheduling through a Virtual clock follows a trajectory
// bit-identical to one calling the simulator itself.
//
// Like the simulator it wraps, a Virtual clock is single-threaded: the
// goroutine that calls RunUntil owns every handler.
type Virtual struct {
	sim *event.Simulator
}

// NewVirtual returns a Virtual clock with the time at zero.
func NewVirtual() *Virtual { return &Virtual{sim: event.New()} }

// Now implements Clock.
func (v *Virtual) Now() float64 { return v.sim.Now() }

// At implements Clock. Scheduling in the past panics, exactly as
// event.Simulator.At does.
func (v *Virtual) At(t float64, h func()) Token {
	return Token{ev: v.sim.At(t, h)}
}

// After implements Clock. Negative delay panics.
func (v *Virtual) After(delay float64, h func()) Token {
	return Token{ev: v.sim.After(delay, h)}
}

// Cancel implements Clock.
func (v *Virtual) Cancel(tok Token) bool { return v.sim.Cancel(tok.ev) }

// RunUntil executes handlers with time <= horizon, then advances the clock
// to exactly horizon.
func (v *Virtual) RunUntil(horizon float64) { v.sim.RunUntil(horizon) }

// Run executes handlers until none remain or Stop is called.
func (v *Virtual) Run() { v.sim.Run() }

// Stop makes the current Run/RunUntil call return after the in-flight
// handler finishes.
func (v *Virtual) Stop() { v.sim.Stop() }

// Pending returns the number of scheduled-but-unfired handlers.
func (v *Virtual) Pending() int { return v.sim.Pending() }

// Simulator exposes the underlying event loop for callers that need its
// full surface (the sim engine's metrics use Fired counts, tests inspect
// the queue).
func (v *Virtual) Simulator() *event.Simulator { return v.sim }

var _ Clock = (*Virtual)(nil)
