package clock

// This file is the repository's single sanctioned home of wall-clock reads:
// qoslint's nondeterminism rule allowlists time.Now/time.Since here (and
// only here). Everything deterministic — the sim engine, policies,
// admission — must take time as an argument or schedule through a Clock.

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// Wall is real time: one broadcast unit lasts a configurable wall duration,
// and handlers fire when their scheduled instant arrives on the machine
// clock. A single goroutine (the caller of Run) owns handler execution;
// At/After/Submit/Cancel are safe to call from any goroutine, so HTTP
// handlers can hand work to the engine loop without extra locking.
//
// Ties are broken by insertion order, matching the virtual loop, and a
// handler scheduled in the past runs as soon as the loop reaches it.
type Wall struct {
	unit   time.Duration
	origin time.Time

	mu      sync.Mutex
	events  wallHeap
	nextSeq uint64
	stopped bool
	wake    chan struct{}
	done    chan struct{}
}

// wallEvent is one scheduled wall-clock handler.
type wallEvent struct {
	t         float64
	seq       uint64
	h         func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// wallHeap orders events by (time, seq).
type wallHeap []*wallEvent

func (h wallHeap) Len() int { return len(h) }
func (h wallHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h wallHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *wallHeap) Push(x any) {
	ev := x.(*wallEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *wallHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// NewWall returns a Wall clock whose broadcast unit lasts the given wall
// duration. The clock starts at time zero (= the moment of this call).
func NewWall(unit time.Duration) (*Wall, error) {
	if unit <= 0 {
		return nil, fmt.Errorf("clock: non-positive wall unit %v", unit)
	}
	return &Wall{
		unit:   unit,
		origin: time.Now(),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}, nil
}

// Unit returns the wall duration of one broadcast unit.
func (w *Wall) Unit() time.Duration { return w.unit }

// Now implements Clock: broadcast units elapsed since the clock was built.
func (w *Wall) Now() float64 {
	return float64(time.Since(w.origin)) / float64(w.unit)
}

// At implements Clock. Unlike the virtual clock, an instant in the past
// does not panic — real time advances between the caller's Now read and
// this call — the handler simply fires as soon as the loop reaches it.
// NaN panics: it has no place on any time line.
func (w *Wall) At(t float64, h func()) Token {
	if math.IsNaN(t) {
		panic("clock: scheduling at NaN")
	}
	if h == nil {
		panic("clock: nil handler")
	}
	w.mu.Lock()
	ev := &wallEvent{t: t, seq: w.nextSeq, h: h}
	w.nextSeq++
	heap.Push(&w.events, ev)
	w.mu.Unlock()
	w.nudge()
	return Token{we: ev}
}

// After implements Clock. Negative delay panics, as on the virtual clock.
func (w *Wall) After(delay float64, h func()) Token {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("clock: negative delay %g", delay))
	}
	return w.At(w.Now()+delay, h)
}

// Submit schedules h to run as soon as possible on the loop goroutine,
// after handlers already due. It is the bridge from foreign goroutines
// (HTTP handlers, signal handlers) into the engine's single-threaded world.
func (w *Wall) Submit(h func()) { w.At(math.Inf(-1), h) }

// Cancel implements Clock.
func (w *Wall) Cancel(tok Token) bool {
	ev := tok.we
	if ev == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if ev.cancelled || ev.index < 0 {
		return false
	}
	ev.cancelled = true
	heap.Remove(&w.events, ev.index)
	ev.index = -1
	ev.h = nil
	return true
}

// nudge wakes the Run loop without blocking.
func (w *Wall) nudge() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// Run executes handlers as their instants arrive, blocking until Stop is
// called. It must be called exactly once; every handler runs on the
// goroutine that calls it.
func (w *Wall) Run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		if w.stopped {
			w.mu.Unlock()
			return
		}
		var h func()
		wait := time.Duration(-1)
		if len(w.events) > 0 {
			ev := w.events[0]
			nowU := float64(time.Since(w.origin)) / float64(w.unit)
			if ev.t <= nowU {
				heap.Pop(&w.events)
				h = ev.h
				ev.h = nil
			} else {
				d := (ev.t - nowU) * float64(w.unit)
				// Clamp absurd horizons so the float→Duration conversion
				// cannot overflow; the loop re-derives the wait each pass.
				if d > float64(time.Hour) {
					d = float64(time.Hour)
				}
				wait = time.Duration(d)
			}
		}
		w.mu.Unlock()
		if h != nil {
			h()
			continue
		}
		if wait < 0 {
			<-w.wake
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-w.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// Stop makes Run return after the in-flight handler finishes. Pending
// handlers are discarded. Safe to call from any goroutine, more than once.
func (w *Wall) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
	w.nudge()
}

// Done is closed when Run has returned.
func (w *Wall) Done() <-chan struct{} { return w.done }

var _ Clock = (*Wall)(nil)
