package faults

import (
	"math"
	"testing"

	"hybridqos/internal/rng"
)

func TestNewBernoulliValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewBernoulli(p); err == nil {
			t.Errorf("NewBernoulli(%g) accepted", p)
		}
	}
	for _, p := range []float64{0, 0.5, 1} {
		if _, err := NewBernoulli(p); err != nil {
			t.Errorf("NewBernoulli(%g) rejected", p)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	b, err := NewBernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	n, lost := 200000, 0
	for i := 0; i < n; i++ {
		if b.Corrupted(0, r) {
			lost++
		}
	}
	got := float64(lost) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("empirical loss %g, want ≈0.3", got)
	}
	if b.MeanLoss() != 0.3 {
		t.Fatalf("MeanLoss %g", b.MeanLoss())
	}
}

func TestBernoulliExtremes(t *testing.T) {
	never, _ := NewBernoulli(0)
	always, _ := NewBernoulli(1)
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		if never.Corrupted(0, r) {
			t.Fatal("p=0 corrupted")
		}
		if !always.Corrupted(0, r) {
			t.Fatal("p=1 delivered")
		}
	}
}

func TestNewGilbertElliottValidation(t *testing.T) {
	bad := [][4]float64{
		{-0.1, 0.5, 0, 1},
		{1.1, 0.5, 0, 1},
		{0.1, math.NaN(), 0, 1},
		{0.1, 0.5, -1, 1},
		{0.1, 0.5, 0, 2},
		{0.1, 0, 0, 1}, // absorbing bad state
	}
	for i, c := range bad {
		if _, err := NewGilbertElliott(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewGilbertElliott(0, 0, 0.05, 1); err != nil {
		t.Errorf("static chain rejected: %v", err)
	}
}

func TestNewBurstLossParameterisation(t *testing.T) {
	g, err := NewBurstLoss(0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.MeanLoss()-0.2) > 1e-12 {
		t.Fatalf("stationary loss %g, want 0.2", g.MeanLoss())
	}
	for _, c := range [][2]float64{{1, 4}, {-0.1, 4}, {0.5, 0.5}, {math.NaN(), 2}} {
		if _, err := NewBurstLoss(c[0], c[1]); err == nil {
			t.Errorf("NewBurstLoss(%g,%g) accepted", c[0], c[1])
		}
	}
}

func TestGilbertElliottStationaryLossAndBurstiness(t *testing.T) {
	g, err := NewBurstLoss(0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	n := 400000
	lost := 0
	// Count loss-run lengths to confirm burstiness: mean run length should
	// be near the configured burst length, far above the i.i.d. value
	// 1/(1-p) ≈ 1.33.
	runs, runLen, cur := 0, 0, 0
	for i := 0; i < n; i++ {
		if g.Corrupted(0, r) {
			lost++
			cur++
		} else if cur > 0 {
			runs++
			runLen += cur
			cur = 0
		}
	}
	gotLoss := float64(lost) / float64(n)
	if math.Abs(gotLoss-0.25) > 0.02 {
		t.Fatalf("empirical loss %g, want ≈0.25", gotLoss)
	}
	meanRun := float64(runLen) / float64(runs)
	if meanRun < 4 {
		t.Fatalf("mean loss-burst length %g, want ≫ 1.33 (bursty)", meanRun)
	}
}

func TestGilbertElliottDeterminism(t *testing.T) {
	mk := func() []bool {
		g, _ := NewBurstLoss(0.3, 5)
		r := rng.New(7)
		out := make([]bool, 1000)
		for i := range out {
			out[i] = g.Corrupted(float64(i), r)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at step %d", i)
		}
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Fatalf("zero value (disabled) rejected: %v", err)
	}
	good := RetryPolicy{MaxAttempts: 3, Base: 1, Multiplier: 2, Max: 10, Jitter: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good policy rejected: %v", err)
	}
	bad := []RetryPolicy{
		{MaxAttempts: -1},
		{MaxAttempts: 1, Base: 0, Multiplier: 2},
		{MaxAttempts: 1, Base: math.NaN(), Multiplier: 2},
		{MaxAttempts: 1, Base: 1, Multiplier: 0.5},
		{MaxAttempts: 1, Base: 1, Multiplier: 2, Max: -1},
		{MaxAttempts: 1, Base: 1, Multiplier: 2, Jitter: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestRetryPolicyBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, Base: 1, Multiplier: 2, Max: 6}
	r := rng.New(9)
	want := []float64{1, 2, 4, 6, 6}
	for i, w := range want {
		if got := p.Backoff(i, r); got != w {
			t.Fatalf("Backoff(%d) = %g, want %g", i, got, w)
		}
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Base: 4, Multiplier: 1, Jitter: 0.5}
	r := rng.New(11)
	lo, hi := 4*(1-0.25), 4*(1+0.25)
	varied := false
	prev := -1.0
	for i := 0; i < 1000; i++ {
		d := p.Backoff(0, r)
		if d < lo || d > hi {
			t.Fatalf("jittered backoff %g outside [%g,%g]", d, lo, hi)
		}
		if prev >= 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("jitter produced a constant backoff")
	}
}

func TestShedConfigValidate(t *testing.T) {
	if err := (ShedConfig{High: 20, Low: 10}).Validate(3); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []ShedConfig{
		{High: 0, Low: 0},
		{High: 10, Low: 10},
		{High: 10, Low: -1},
		{High: 10, Low: 5, MaxShedClasses: 3}, // would shed class 0
		{High: 10, Low: 5, MaxShedClasses: -1},
	}
	for i, c := range bad {
		if err := c.Validate(3); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestShedderHysteresis(t *testing.T) {
	s, err := NewShedder(ShedConfig{High: 10, Low: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Below high water: everyone admitted, level stays 0.
	if !s.Admit(9, 2) || s.Level() != 0 {
		t.Fatalf("admitted below high water? level %d", s.Level())
	}
	// Crossing high water sheds the lowest class only.
	if s.Admit(10, 2) {
		t.Fatal("Class-C admitted at high water")
	}
	if s.Level() != 1 {
		t.Fatalf("level %d after high-water crossing", s.Level())
	}
	if !s.Admit(9, 1) || !s.Admit(9, 0) {
		t.Fatal("higher classes shed at level 1")
	}
	// Hysteresis: load between the watermarks keeps shedding.
	if s.Admit(7, 2) {
		t.Fatal("Class-C admitted inside the hysteresis band")
	}
	// Dropping to the low-water mark restores admission.
	if !s.Admit(4, 2) {
		t.Fatal("Class-C still shed at low water")
	}
	if s.Level() != 0 {
		t.Fatalf("level %d after low-water crossing", s.Level())
	}
}

func TestShedderMaxLevelDefaultsToBottomClass(t *testing.T) {
	s, _ := NewShedder(ShedConfig{High: 5, Low: 1}, 3)
	for i := 0; i < 10; i++ {
		s.Admit(100, 2) // sustained overload
	}
	if s.Level() != 1 {
		t.Fatalf("default shed level climbed to %d, want 1 (bottom class only)", s.Level())
	}
	if !s.Admit(100, 1) {
		t.Fatal("Class-B shed under default MaxShedClasses")
	}
}

func TestShedderProgressiveLevels(t *testing.T) {
	s, _ := NewShedder(ShedConfig{High: 5, Low: 1, MaxShedClasses: 2}, 3)
	s.Admit(5, 2)
	s.Admit(5, 2)
	if s.Level() != 2 {
		t.Fatalf("level %d under sustained overload, want 2", s.Level())
	}
	if s.Admit(3, 1) {
		t.Fatal("Class-B admitted at level 2")
	}
	if !s.Admit(3, 0) {
		t.Fatal("Class-A shed — the top class must never be shed")
	}
	s.Admit(1, 0)
	s.Admit(1, 0)
	if s.Level() != 0 {
		t.Fatalf("level %d after draining, want 0", s.Level())
	}
}
