// Package faults models the lossy downlink the paper assumes away. The
// paper's assumption list (§2) posits an error-free broadcast channel, but
// the asymmetric wireless cell it targets is defined by bursty link errors:
// WiMAX scheduling evaluations and partially-lossy queueing models both show
// that loss handling changes which scheduler wins. This package supplies the
// three fault-layer primitives the simulator composes:
//
//   - LossModel — per-transmission downlink corruption: i.i.d. Bernoulli
//     loss and a two-state Gilbert–Elliott bursty-error chain, both
//     deterministic under internal/rng so seeded runs stay reproducible;
//   - RetryPolicy — client-side recovery for corrupted pull deliveries:
//     bounded attempts with exponential backoff and uniform jitter;
//   - Shedder — server-side graceful degradation: a class-aware admission
//     controller that sheds lowest-class requests when pending load crosses
//     a high-water mark and restores admission at a low-water mark
//     (hysteresis).
//
// Loss models and shedders are stateful; like uplink channels they must not
// be shared across parallel replications — construct one per run.
package faults

import (
	"fmt"
	"math"

	"hybridqos/internal/rng"
)

// LossModel decides whether a downlink transmission is corrupted. Calls are
// made once per completed transmission in simulated-time order; stateful
// models (Gilbert–Elliott) advance their chain one step per call.
type LossModel interface {
	// Name identifies the model in reports.
	Name() string
	// Corrupted reports whether the transmission completing at simulated
	// time now was corrupted (no client could decode it).
	Corrupted(now float64, r *rng.Source) bool
	// MeanLoss returns the model's long-run corruption probability.
	MeanLoss() float64
}

// Bernoulli corrupts each transmission independently with probability P.
type Bernoulli struct {
	p float64
}

// NewBernoulli validates p ∈ [0,1] and returns the i.i.d. loss model.
func NewBernoulli(p float64) (*Bernoulli, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("faults: loss probability %g outside [0,1]", p)
	}
	return &Bernoulli{p: p}, nil
}

// Name implements LossModel.
func (b *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(p=%g)", b.p) }

// MeanLoss implements LossModel.
func (b *Bernoulli) MeanLoss() float64 { return b.p }

// Corrupted implements LossModel. It draws exactly one variate per call so
// the stream stays aligned regardless of outcomes.
func (b *Bernoulli) Corrupted(_ float64, r *rng.Source) bool {
	return r.Float64() < b.p
}

// GilbertElliott is the classical two-state bursty-error chain: a Good state
// with low corruption probability and a Bad state with high corruption
// probability, with per-transmission transition probabilities between them.
// The chain starts Good. Expected Bad-burst length is 1/BadToGood
// transmissions; the stationary Bad fraction is
// GoodToBad/(GoodToBad+BadToGood).
type GilbertElliott struct {
	goodToBad, badToGood float64
	lossGood, lossBad    float64
	bad                  bool
}

// NewGilbertElliott validates the transition and per-state corruption
// probabilities and returns the chain in the Good state.
func NewGilbertElliott(goodToBad, badToGood, lossGood, lossBad float64) (*GilbertElliott, error) {
	for _, pr := range [...]struct {
		name string
		v    float64
	}{
		{"good→bad", goodToBad}, {"bad→good", badToGood},
		{"good-state loss", lossGood}, {"bad-state loss", lossBad},
	} {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return nil, fmt.Errorf("faults: %s probability %g outside [0,1]", pr.name, pr.v)
		}
	}
	if goodToBad > 0 && badToGood == 0 {
		return nil, fmt.Errorf("faults: absorbing bad state (bad→good = 0 with good→bad %g)", goodToBad)
	}
	return &GilbertElliott{
		goodToBad: goodToBad, badToGood: badToGood,
		lossGood: lossGood, lossBad: lossBad,
	}, nil
}

// NewBurstLoss is the common parameterisation by observables: a target mean
// corruption probability meanLoss < 1 and a mean burst length meanBurst ≥ 1
// (in transmissions). The Bad state always corrupts, the Good state never
// does; BadToGood = 1/meanBurst and GoodToBad is set so the stationary Bad
// fraction equals meanLoss.
func NewBurstLoss(meanLoss, meanBurst float64) (*GilbertElliott, error) {
	if meanLoss < 0 || meanLoss >= 1 || math.IsNaN(meanLoss) {
		return nil, fmt.Errorf("faults: mean loss %g outside [0,1)", meanLoss)
	}
	if meanBurst < 1 || math.IsNaN(meanBurst) || math.IsInf(meanBurst, 0) {
		return nil, fmt.Errorf("faults: mean burst length %g below 1", meanBurst)
	}
	badToGood := 1 / meanBurst
	goodToBad := badToGood * meanLoss / (1 - meanLoss)
	if goodToBad > 1 {
		return nil, fmt.Errorf("faults: mean loss %g unreachable with burst length %g", meanLoss, meanBurst)
	}
	return NewGilbertElliott(goodToBad, badToGood, 0, 1)
}

// Name implements LossModel.
func (g *GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert-elliott(gb=%g, bg=%g, lossG=%g, lossB=%g)",
		g.goodToBad, g.badToGood, g.lossGood, g.lossBad)
}

// MeanLoss implements LossModel: the stationary corruption probability.
func (g *GilbertElliott) MeanLoss() float64 {
	denom := g.goodToBad + g.badToGood
	if denom == 0 {
		return g.lossGood // chain never leaves Good
	}
	piBad := g.goodToBad / denom
	return piBad*g.lossBad + (1-piBad)*g.lossGood
}

// Bad reports whether the chain is currently in the Bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Corrupted implements LossModel: advance the chain one step, then corrupt
// with the state's probability. Exactly two variates are drawn per call so
// the stream stays aligned regardless of the trajectory.
func (g *GilbertElliott) Corrupted(_ float64, r *rng.Source) bool {
	u := r.Float64()
	if g.bad {
		if u < g.badToGood {
			g.bad = false
		}
	} else if u < g.goodToBad {
		g.bad = true
	}
	loss := g.lossGood
	if g.bad {
		loss = g.lossBad
	}
	return r.Float64() < loss
}

// RetryPolicy governs client re-requests after a corrupted pull delivery:
// up to MaxAttempts re-requests per original request, spaced by exponential
// backoff with uniform jitter. The zero value disables retries (a corrupted
// delivery immediately counts as failed).
type RetryPolicy struct {
	// MaxAttempts is the number of re-requests allowed per request after
	// corrupted deliveries; 0 disables retries.
	MaxAttempts int
	// Base is the backoff before the first re-request, in broadcast units.
	Base float64
	// Multiplier grows the backoff per attempt (≥ 1; exponential backoff).
	Multiplier float64
	// Max, when positive, caps the un-jittered backoff.
	Max float64
	// Jitter in [0,1] spreads each backoff uniformly over
	// [1−Jitter/2, 1+Jitter/2] times its nominal value, decorrelating the
	// re-request bursts that follow a shared corrupted broadcast.
	Jitter float64
}

// Enabled reports whether the policy allows any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// Validate reports whether the policy is usable. The zero value is valid
// (retries disabled).
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("faults: negative retry attempts %d", p.MaxAttempts)
	}
	if !p.Enabled() {
		return nil
	}
	if p.Base <= 0 || math.IsNaN(p.Base) || math.IsInf(p.Base, 0) {
		return fmt.Errorf("faults: invalid retry backoff base %g", p.Base)
	}
	if p.Multiplier < 1 || math.IsNaN(p.Multiplier) || math.IsInf(p.Multiplier, 0) {
		return fmt.Errorf("faults: retry backoff multiplier %g below 1", p.Multiplier)
	}
	if p.Max < 0 || math.IsNaN(p.Max) || math.IsInf(p.Max, 0) {
		return fmt.Errorf("faults: invalid retry backoff cap %g", p.Max)
	}
	if p.Jitter < 0 || p.Jitter > 1 || math.IsNaN(p.Jitter) {
		return fmt.Errorf("faults: retry jitter %g outside [0,1]", p.Jitter)
	}
	return nil
}

// Backoff returns the delay before re-request number attempt (0-based: the
// first retry is attempt 0). One variate is drawn when Jitter > 0.
func (p RetryPolicy) Backoff(attempt int, r *rng.Source) float64 {
	d := p.Base * math.Pow(p.Multiplier, float64(attempt))
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(r.Float64()-0.5)
	}
	return d
}

// ShedConfig parameterises the class-aware admission controller.
type ShedConfig struct {
	// High is the pending-load high-water mark (pull-queue requests plus
	// outstanding retries): reaching it sheds one more class, lowest first.
	High int
	// Low is the low-water mark: dropping to it restores one class. Low must
	// be strictly below High so the controller has hysteresis.
	Low int
	// MaxShedClasses bounds how many of the lowest-priority classes can be
	// shed simultaneously; 0 means 1 (only the bottom class). The
	// highest-priority class is never sheddable.
	MaxShedClasses int
}

// Validate reports whether the watermarks are usable for numClasses classes.
func (c ShedConfig) Validate(numClasses int) error {
	if c.High <= 0 {
		return fmt.Errorf("faults: shed high-water mark %d not positive", c.High)
	}
	if c.Low < 0 || c.Low >= c.High {
		return fmt.Errorf("faults: shed low-water mark %d outside [0,%d)", c.Low, c.High)
	}
	if c.MaxShedClasses < 0 || c.MaxShedClasses >= numClasses {
		return fmt.Errorf("faults: %d sheddable classes with %d classes (class 0 is never shed)",
			c.MaxShedClasses, numClasses)
	}
	return nil
}

// maxLevel resolves the configured shed-class bound (0 means 1).
func (c ShedConfig) maxLevel() int {
	if c.MaxShedClasses == 0 {
		return 1
	}
	return c.MaxShedClasses
}

// Shedder is the admission controller's runtime state: a shed level in
// [0, MaxShedClasses] that rises one class per high-water crossing and falls
// one class per low-water crossing. At level ℓ the ℓ lowest-priority classes
// are refused admission.
type Shedder struct {
	cfg        ShedConfig
	numClasses int
	level      int
}

// NewShedder validates the configuration and returns an idle controller.
func NewShedder(cfg ShedConfig, numClasses int) (*Shedder, error) {
	if numClasses <= 0 {
		return nil, fmt.Errorf("faults: shedder needs at least one class, got %d", numClasses)
	}
	if err := cfg.Validate(numClasses); err != nil {
		return nil, err
	}
	return &Shedder{cfg: cfg, numClasses: numClasses}, nil
}

// Level returns the current shed level (number of classes being shed).
func (s *Shedder) Level() int { return s.level }

// Admit updates the hysteresis state for the observed pending load and
// reports whether a request of the given 0-based class (0 = highest
// priority) is admitted. Load is sampled at every admission decision, so the
// level moves at most one class per arriving request.
func (s *Shedder) Admit(load int, class int) bool {
	if load >= s.cfg.High && s.level < s.cfg.maxLevel() {
		s.level++
	} else if load <= s.cfg.Low && s.level > 0 {
		s.level--
	}
	return class < s.numClasses-s.level
}

// FreezeBatch reports whether the hysteresis level provably cannot move
// across a batch of up to n admission decisions starting from the observed
// load, assuming load is non-decreasing during the batch and each admitted
// request raises it by at most one (the engine's arrival-burst invariant).
// When frozen it returns the admission cut: classes below it are admitted.
// The caller may then answer every decision in the batch as class < cut
// with a trajectory bit-identical to n sequential Admit calls — the i-th
// call would observe load ≤ load+i-1 < High (no increment) and ≥ load > Low
// (no decrement), leaving the level untouched. When not frozen (the level
// could move mid-batch) it returns ok=false and the caller must fall back
// to per-request Admit.
func (s *Shedder) FreezeBatch(load, n int) (cut int, ok bool) {
	noUp := load+n-1 < s.cfg.High || s.level == s.cfg.maxLevel()
	noDown := load > s.cfg.Low || s.level == 0
	if !noUp || !noDown {
		return 0, false
	}
	return s.numClasses - s.level, true
}

var (
	_ LossModel = (*Bernoulli)(nil)
	_ LossModel = (*GilbertElliott)(nil)
)
