package workload

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/rng"
)

func TestNewPoissonValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(bad); err == nil {
			t.Errorf("rate %g accepted", bad)
		}
	}
	p, err := NewPoisson(5)
	if err != nil || p.Rate() != 5 {
		t.Fatalf("valid rate rejected: %v", err)
	}
}

func TestPoissonEmpiricalRate(t *testing.T) {
	p, _ := NewPoisson(5)
	r := rng.New(1)
	var total float64
	const events = 100000
	for i := 0; i < events; i++ {
		gap, batch := p.Next(r)
		if gap <= 0 || batch != 1 {
			t.Fatalf("gap %g batch %d", gap, batch)
		}
		total += gap
	}
	rate := events / total
	if math.Abs(rate-5)/5 > 0.02 {
		t.Fatalf("empirical rate %g, want ~5", rate)
	}
}

func TestNewMMPPValidation(t *testing.T) {
	cases := []struct {
		rates, switches []float64
	}{
		{nil, nil},
		{[]float64{1}, []float64{1}},
		{[]float64{1, 2}, []float64{1}},
		{[]float64{-1, 2}, []float64{1, 1}},
		{[]float64{0, 0}, []float64{1, 1}},
		{[]float64{1, 2}, []float64{0, 1}},
		{[]float64{1, math.NaN()}, []float64{1, 1}},
	}
	for i, c := range cases {
		if _, err := NewMMPP(c.rates, c.switches); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMMPPRateFormula(t *testing.T) {
	// States: rate 10 with mean sojourn 1, rate 2 with mean sojourn 3:
	// mean = (10·1 + 2·3)/(1+3) = 4.
	m, err := NewMMPP([]float64{10, 2}, []float64{1, 1.0 / 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate()-4) > 1e-12 {
		t.Fatalf("Rate() = %g, want 4", m.Rate())
	}
}

func TestMMPPEmpiricalRate(t *testing.T) {
	m, err := Bursty(5, 3, 0.01) // slow switching, strong burst contrast
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	var total float64
	const events = 300000
	for i := 0; i < events; i++ {
		gap, batch := m.Next(r)
		if gap <= 0 || batch != 1 {
			t.Fatalf("gap %g batch %d", gap, batch)
		}
		total += gap
	}
	rate := events / total
	want := m.Rate()
	if math.Abs(rate-want)/want > 0.05 {
		t.Fatalf("empirical rate %g, want ~%g", rate, want)
	}
}

func TestMMPPIsBurstier(t *testing.T) {
	// The squared coefficient of variation of MMPP inter-arrivals must
	// exceed the Poisson value of 1.
	m, _ := Bursty(5, 4, 0.05)
	r := rng.New(3)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		gap, _ := m.Next(r)
		sum += gap
		sumSq += gap * gap
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	cv2 := variance / (mean * mean)
	if cv2 < 1.2 {
		t.Fatalf("MMPP CV² = %g, expected clearly above Poisson's 1", cv2)
	}
}

func TestMMPPSilentState(t *testing.T) {
	// One silent state: arrivals still happen (process skips through it).
	m, err := NewMMPP([]float64{10, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 1000; i++ {
		gap, _ := m.Next(r)
		if gap <= 0 || math.IsInf(gap, 0) {
			t.Fatalf("gap %g", gap)
		}
	}
}

func TestBurstyValidation(t *testing.T) {
	for _, c := range [][3]float64{{0, 2, 1}, {5, 1, 1}, {5, 2, 0}} {
		if _, err := Bursty(c[0], c[1], c[2]); err == nil {
			t.Errorf("Bursty%v accepted", c)
		}
	}
	m, err := Bursty(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate()-(10+2.5)/2) > 1e-12 {
		t.Fatalf("Bursty mean rate %g", m.Rate())
	}
}

func TestNewBatchPoissonValidation(t *testing.T) {
	cases := [][2]float64{{0, 2}, {-1, 2}, {1, 0.5}, {1, math.NaN()}}
	for i, c := range cases {
		if _, err := NewBatchPoisson(c[0], c[1]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBatchPoissonMoments(t *testing.T) {
	b, err := NewBatchPoisson(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rate() != 6 {
		t.Fatalf("Rate = %g, want 6", b.Rate())
	}
	r := rng.New(5)
	var gaps, batches float64
	const n = 200000
	for i := 0; i < n; i++ {
		gap, batch := b.Next(r)
		if batch < 1 {
			t.Fatalf("batch %d", batch)
		}
		gaps += gap
		batches += float64(batch)
	}
	if got := n / gaps; math.Abs(got-2)/2 > 0.02 {
		t.Fatalf("event rate %g, want ~2", got)
	}
	if got := batches / n; math.Abs(got-3)/3 > 0.02 {
		t.Fatalf("mean batch %g, want ~3", got)
	}
}

func TestBatchPoissonUnitBatch(t *testing.T) {
	b, _ := NewBatchPoisson(1, 1)
	r := rng.New(6)
	for i := 0; i < 100; i++ {
		if _, batch := b.Next(r); batch != 1 {
			t.Fatalf("MeanBatch=1 produced batch %d", batch)
		}
	}
}

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Generate(catalog.PaperConfig(0.6, 1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStaticPopularity(t *testing.T) {
	cat := testCatalog(t)
	s := StaticPopularity{Catalog: cat}
	r := rng.New(7)
	counts := make([]int, cat.D()+1)
	const draws = 100000
	for i := 0; i < draws; i++ {
		rank := s.SampleItem(r, 12345)
		if rank < 1 || rank > cat.D() {
			t.Fatalf("rank %d", rank)
		}
		counts[rank]++
	}
	if counts[1] <= counts[50] {
		t.Fatal("static popularity not skewed toward rank 1")
	}
}

func TestRotatingPopularityValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := NewRotatingPopularity(nil, 10, 1); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := NewRotatingPopularity(cat, 0, 1); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := NewRotatingPopularity(cat, 10, 0); err == nil {
		t.Fatal("shift 0 accepted")
	}
}

func TestRotatingPopularityShifts(t *testing.T) {
	cat := testCatalog(t)
	rot, err := NewRotatingPopularity(cat, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	countsAt := func(now float64) []int {
		r := rng.New(8)
		counts := make([]int, cat.D()+1)
		for i := 0; i < 50000; i++ {
			counts[rot.SampleItem(r, now)]++
		}
		return counts
	}
	// Epoch 0: hottest item is rank 1. Epoch 1 (t=150): hottest is rank 11.
	c0 := countsAt(0)
	c1 := countsAt(150)
	max0, max1 := argmax(c0), argmax(c1)
	if max0 != 1 {
		t.Fatalf("epoch 0 hottest rank %d, want 1", max0)
	}
	if max1 != 11 {
		t.Fatalf("epoch 1 hottest rank %d, want 11", max1)
	}
}

func TestRotatingPopularityWrapsAround(t *testing.T) {
	cat := testCatalog(t)
	rot, _ := NewRotatingPopularity(cat, 1, 30)
	r := rng.New(9)
	// After many epochs ranks must still be in range.
	for i := 0; i < 10000; i++ {
		rank := rot.SampleItem(r, 1e6)
		if rank < 1 || rank > cat.D() {
			t.Fatalf("rank %d out of range after wrap", rank)
		}
	}
}

func TestNamesNonEmpty(t *testing.T) {
	cat := testCatalog(t)
	p, _ := NewPoisson(1)
	m, _ := Bursty(5, 2, 1)
	b, _ := NewBatchPoisson(1, 2)
	rot, _ := NewRotatingPopularity(cat, 10, 1)
	for _, name := range []string{
		p.Name(), m.Name(), b.Name(),
		StaticPopularity{Catalog: cat}.Name(), rot.Name(),
	} {
		if name == "" {
			t.Fatal("empty name")
		}
	}
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}
