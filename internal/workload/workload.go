// Package workload provides request-arrival models beyond the paper's plain
// Poisson process, so the scheduler can be exercised under the traffic
// shapes real wireless data services see: bursty (Markov-modulated Poisson),
// batched (flash crowds requesting together), and popularity drift (the hot
// set rotating over the day). The paper's own assumption 2 (Poisson, λ′ = 5)
// remains the default everywhere.
package workload

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
	"hybridqos/internal/rng"
)

// ArrivalProcess generates the request-arrival point process. Next returns
// the gap to the next arrival event and the number of requests that event
// carries (≥ 1). Implementations may hold state (e.g. the MMPP modulating
// chain) and are not safe for concurrent use; construct one per simulation.
type ArrivalProcess interface {
	// Name identifies the process in reports.
	Name() string
	// Next draws the next event: a strictly positive gap and a batch ≥ 1.
	Next(r *rng.Source) (gap float64, batch int)
	// Rate returns the long-run average request rate (requests per unit
	// time), for analytic-model feeds.
	Rate() float64
}

// Poisson is the paper's arrival model: exponential gaps at rate Lambda,
// one request per event.
type Poisson struct {
	// Lambda is the arrival rate.
	Lambda float64
}

// NewPoisson validates the rate.
func NewPoisson(lambda float64) (Poisson, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Poisson{}, fmt.Errorf("workload: invalid Poisson rate %g", lambda)
	}
	return Poisson{Lambda: lambda}, nil
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(λ=%g)", p.Lambda) }

// Next implements ArrivalProcess.
func (p Poisson) Next(r *rng.Source) (float64, int) { return r.Exp(p.Lambda), 1 }

// Rate implements ArrivalProcess.
func (p Poisson) Rate() float64 { return p.Lambda }

// MMPP is a Markov-modulated Poisson process: a background CTMC over states
// 0..n−1 where state s emits Poisson arrivals at Rates[s] and leaves for
// state (s+1) mod n at SwitchRates[s]. A two-state MMPP with a high and a
// low rate is the classical bursty-traffic model.
type MMPP struct {
	rates       []float64
	switchRates []float64
	state       int
}

// NewMMPP builds an MMPP. rates[s] may be zero (silent state); switchRates
// must be positive.
func NewMMPP(rates, switchRates []float64) (*MMPP, error) {
	if len(rates) < 2 || len(rates) != len(switchRates) {
		return nil, fmt.Errorf("workload: MMPP needs n≥2 equal-length rate vectors, got %d/%d",
			len(rates), len(switchRates))
	}
	for i, x := range rates {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("workload: invalid MMPP rate %g in state %d", x, i)
		}
	}
	allZero := true
	for _, x := range rates {
		if x > 0 {
			allZero = false
		}
	}
	if allZero {
		return nil, fmt.Errorf("workload: MMPP with all-zero emission rates")
	}
	for i, x := range switchRates {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("workload: invalid MMPP switch rate %g in state %d", x, i)
		}
	}
	return &MMPP{
		rates:       append([]float64(nil), rates...),
		switchRates: append([]float64(nil), switchRates...),
	}, nil
}

// Bursty returns the canonical two-state MMPP with the given mean rate and
// burstiness factor f > 1: the burst state emits at f·mean, the quiet state
// at mean/f, with equal sojourn rates so the long-run mean is preserved.
func Bursty(mean, f, switchRate float64) (*MMPP, error) {
	if mean <= 0 || f <= 1 || switchRate <= 0 {
		return nil, fmt.Errorf("workload: Bursty(mean=%g, f=%g, switch=%g)", mean, f, switchRate)
	}
	return NewMMPP([]float64{mean * f, mean / f}, []float64{switchRate, switchRate})
}

// Name implements ArrivalProcess.
func (m *MMPP) Name() string { return fmt.Sprintf("mmpp(%d states)", len(m.rates)) }

// Next implements ArrivalProcess. It races the next arrival against the next
// modulating-chain switch, advancing state as needed.
func (m *MMPP) Next(r *rng.Source) (float64, int) {
	elapsed := 0.0
	for {
		tSwitch := r.Exp(m.switchRates[m.state])
		if m.rates[m.state] == 0 {
			// Silent state: only the switch can happen.
			elapsed += tSwitch
			m.state = (m.state + 1) % len(m.rates)
			continue
		}
		tArrive := r.Exp(m.rates[m.state])
		if tArrive <= tSwitch {
			return elapsed + tArrive, 1
		}
		elapsed += tSwitch
		m.state = (m.state + 1) % len(m.rates)
	}
}

// Rate implements ArrivalProcess: the sojourn-weighted mean emission rate.
func (m *MMPP) Rate() float64 {
	// Sojourn time in state s is 1/switchRates[s]; stationary probability is
	// proportional to it (single-cycle chain).
	var num, den float64
	for s, rate := range m.rates {
		w := 1 / m.switchRates[s]
		num += w * rate
		den += w
	}
	return num / den
}

// State returns the current modulating state (diagnostics, tests).
func (m *MMPP) State() int { return m.state }

// BatchPoisson is a compound Poisson process: events at rate EventRate, each
// carrying 1 + Geometric(1−1/MeanBatch) requests — a flash-crowd model where
// correlated clients request together.
type BatchPoisson struct {
	// EventRate is the batch-event rate.
	EventRate float64
	// MeanBatch is the mean requests per event (≥ 1).
	MeanBatch float64
}

// NewBatchPoisson validates the parameters.
func NewBatchPoisson(eventRate, meanBatch float64) (BatchPoisson, error) {
	if eventRate <= 0 || math.IsNaN(eventRate) || math.IsInf(eventRate, 0) {
		return BatchPoisson{}, fmt.Errorf("workload: invalid event rate %g", eventRate)
	}
	if meanBatch < 1 || math.IsNaN(meanBatch) || math.IsInf(meanBatch, 0) {
		return BatchPoisson{}, fmt.Errorf("workload: mean batch %g below 1", meanBatch)
	}
	return BatchPoisson{EventRate: eventRate, MeanBatch: meanBatch}, nil
}

// Name implements ArrivalProcess.
func (b BatchPoisson) Name() string {
	return fmt.Sprintf("batch-poisson(λe=%g, E[batch]=%g)", b.EventRate, b.MeanBatch)
}

// Next implements ArrivalProcess.
func (b BatchPoisson) Next(r *rng.Source) (float64, int) {
	gap := r.Exp(b.EventRate)
	batch := 1
	if b.MeanBatch > 1 {
		// Geometric with success prob 1/MeanBatch gives mean MeanBatch−1
		// extra requests: P[extra = k] = (1−p)^k·p with p = 1/MeanBatch.
		p := 1 / b.MeanBatch
		for r.Float64() > p {
			batch++
		}
	}
	return gap, batch
}

// Rate implements ArrivalProcess.
func (b BatchPoisson) Rate() float64 { return b.EventRate * b.MeanBatch }

// ItemSampler draws the item rank of a request at simulated time now.
// Implementations model how popularity evolves.
type ItemSampler interface {
	// Name identifies the sampler.
	Name() string
	// SampleItem draws a 1-based catalog rank.
	SampleItem(r *rng.Source, now float64) int
}

// StaticPopularity is the paper's model: the catalog's fixed Zipf law.
type StaticPopularity struct {
	// Catalog supplies the law.
	Catalog *catalog.Catalog
}

// Name implements ItemSampler.
func (s StaticPopularity) Name() string { return "static-zipf" }

// SampleItem implements ItemSampler.
func (s StaticPopularity) SampleItem(r *rng.Source, _ float64) int {
	return s.Catalog.SampleRank(r)
}

// RotatingPopularity models hot-set churn: every Period broadcast units the
// popularity ranking rotates by Shift positions, so yesterday's hot items
// cool down. The server's PUSH SET DOES NOT FOLLOW — that is exactly the
// mismatch the paper's periodic cutoff re-optimisation (and the adaptive
// package) exists to correct.
type RotatingPopularity struct {
	// Catalog supplies the base law.
	Catalog *catalog.Catalog
	// Period is the rotation interval (> 0).
	Period float64
	// Shift is the rank rotation per period (≥ 1).
	Shift int
}

// NewRotatingPopularity validates the parameters.
func NewRotatingPopularity(cat *catalog.Catalog, period float64, shift int) (*RotatingPopularity, error) {
	if cat == nil {
		return nil, fmt.Errorf("workload: nil catalog")
	}
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("workload: invalid rotation period %g", period)
	}
	if shift < 1 {
		return nil, fmt.Errorf("workload: rotation shift %d", shift)
	}
	return &RotatingPopularity{Catalog: cat, Period: period, Shift: shift}, nil
}

// Name implements ItemSampler.
func (s *RotatingPopularity) Name() string {
	return fmt.Sprintf("rotating-zipf(period=%g, shift=%d)", s.Period, s.Shift)
}

// SampleItem implements ItemSampler: the popularity rank drawn from the base
// law is mapped to a rotated catalog position.
func (s *RotatingPopularity) SampleItem(r *rng.Source, now float64) int {
	rank := s.Catalog.SampleRank(r)
	epochs := int(now / s.Period)
	d := s.Catalog.D()
	return (rank-1+epochs*s.Shift)%d + 1
}
