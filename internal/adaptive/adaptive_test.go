package adaptive

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
	"hybridqos/internal/zipf"
)

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(1); err == nil {
		t.Fatal("d=1 accepted")
	}
	e, err := NewEstimator(10)
	if err != nil || e.Total() != 0 {
		t.Fatalf("valid estimator rejected: %v", err)
	}
}

func TestObservePanicsOutOfRange(t *testing.T) {
	e, _ := NewEstimator(5)
	for _, rank := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d did not panic", rank)
				}
			}()
			e.Observe(rank)
		}()
	}
}

func TestThetaMLERecoversTrueSkew(t *testing.T) {
	r := rng.New(42)
	for _, trueTheta := range []float64{0.2, 0.6, 1.0, 1.4} {
		dist := zipf.Must(100, trueTheta)
		e, _ := NewEstimator(100)
		for i := 0; i < 200000; i++ {
			e.Observe(dist.Sample(r))
		}
		got, err := e.ThetaMLE()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-trueTheta) > 0.05 {
			t.Errorf("true θ=%g: MLE %g", trueTheta, got)
		}
	}
}

func TestThetaMLEPermutationInvariant(t *testing.T) {
	// The MLE sorts counts, so a permuted (rotated) popularity must fit the
	// same skew — this is what lets the controller track a drifting hot set.
	r := rng.New(7)
	dist := zipf.Must(50, 0.9)
	e, _ := NewEstimator(50)
	for i := 0; i < 100000; i++ {
		rank := dist.Sample(r)
		rotated := (rank-1+17)%50 + 1
		e.Observe(rotated)
	}
	got, err := e.ThetaMLE()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.08 {
		t.Fatalf("rotated MLE %g, want ~0.9", got)
	}
}

func TestThetaMLETooFewObservations(t *testing.T) {
	e, _ := NewEstimator(10)
	for i := 0; i < 5; i++ {
		e.Observe(1)
	}
	if _, err := e.ThetaMLE(); err == nil {
		t.Fatal("sparse window accepted")
	}
}

func TestRankingByCount(t *testing.T) {
	e, _ := NewEstimator(4)
	// Item 3 hottest, then 1, then 2 and 4 tied (tie → original order).
	for i := 0; i < 5; i++ {
		e.Observe(3)
	}
	for i := 0; i < 3; i++ {
		e.Observe(1)
	}
	e.Observe(2)
	e.Observe(4)
	got := e.RankingByCount()
	want := []int{3, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking %v, want %v", got, want)
		}
	}
}

func TestLambdaEstimate(t *testing.T) {
	e, _ := NewEstimator(10)
	for i := 0; i < 500; i++ {
		e.Observe(i%10 + 1)
	}
	l, err := e.LambdaEstimate(100)
	if err != nil || l != 5 {
		t.Fatalf("lambda %g err %v", l, err)
	}
	if _, err := e.LambdaEstimate(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestReset(t *testing.T) {
	e, _ := NewEstimator(10)
	e.Observe(1)
	e.Reset()
	if e.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func plannerFor(t *testing.T, cat *catalog.Catalog) Planner {
	t.Helper()
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	lengths := make([]float64, cat.D())
	for i := range lengths {
		lengths[i] = cat.Length(i + 1)
	}
	return Planner{Classes: cl, Alpha: 0.5, Lengths: lengths}
}

func TestReplanTracksSkew(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 1))
	p := plannerFor(t, cat)
	r := rng.New(3)

	planFor := func(theta float64) Plan {
		dist := zipf.Must(100, theta)
		e, _ := NewEstimator(100)
		for i := 0; i < 100000; i++ {
			e.Observe(dist.Sample(r))
		}
		plan, err := p.Replan(e, 20000) // λ ≈ 5
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	hot := planFor(1.4)
	flat := planFor(0.2)
	if math.Abs(hot.Theta-1.4) > 0.1 || math.Abs(flat.Theta-0.2) > 0.1 {
		t.Fatalf("theta estimates: %g, %g", hot.Theta, flat.Theta)
	}
	if hot.Cutoff > flat.Cutoff {
		t.Fatalf("hot-skew cutoff %d above flat-skew cutoff %d", hot.Cutoff, flat.Cutoff)
	}
	if hot.PredictedCost <= 0 || hot.PredictedDelay <= 0 {
		t.Fatalf("plan predictions: %+v", hot)
	}
	if len(hot.Ranking) != 100 {
		t.Fatalf("ranking size %d", len(hot.Ranking))
	}
}

func TestReplanErrors(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 1))
	p := plannerFor(t, cat)
	e, _ := NewEstimator(100)
	if _, err := p.Replan(e, 100); err == nil {
		t.Fatal("empty window accepted")
	}
	bad := p
	bad.Classes = nil
	if _, err := bad.Replan(e, 100); err == nil {
		t.Fatal("nil classes accepted")
	}
	short := p
	short.Lengths = short.Lengths[:50]
	if _, err := short.Replan(e, 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEpochControllerLoop(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 1))
	p := plannerFor(t, cat)
	ctl, err := NewEpochController(p, 100, 1000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Cutoff() != 40 || ctl.Planned() {
		t.Fatalf("initial state: K=%d planned=%v", ctl.Cutoff(), ctl.Planned())
	}
	r := rng.New(5)
	dist := zipf.Must(100, 1.2)
	now := 0.0
	replans := 0
	for i := 0; i < 30000; i++ {
		now += 0.2 // λ = 5
		if ctl.Observe(dist.Sample(r), now) {
			replans++
		}
	}
	if replans == 0 || !ctl.Planned() {
		t.Fatal("controller never re-planned")
	}
	if len(ctl.History) != replans {
		t.Fatalf("history %d vs replans %d", len(ctl.History), replans)
	}
	last := ctl.History[len(ctl.History)-1]
	if math.Abs(last.Theta-1.2) > 0.15 {
		t.Fatalf("controller θ estimate %g, want ~1.2", last.Theta)
	}
	if math.Abs(last.Lambda-5) > 0.5 {
		t.Fatalf("controller λ estimate %g, want ~5", last.Lambda)
	}
	// Hot skew: controller should shrink the cutoff from the stale 40.
	if ctl.Cutoff() >= 40 {
		t.Fatalf("controller kept K=%d for θ=1.2", ctl.Cutoff())
	}
}

func TestEpochControllerValidation(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 1))
	p := plannerFor(t, cat)
	if _, err := NewEpochController(p, 100, 0, 40); err == nil {
		t.Fatal("epoch 0 accepted")
	}
	if _, err := NewEpochController(p, 100, 10, 101); err == nil {
		t.Fatal("cutoff 101 accepted")
	}
}

func TestEpochControllerKeepsPlanOnSparseEpoch(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 1))
	p := plannerFor(t, cat)
	ctl, err := NewEpochController(p, 100, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 observations in the epoch: replan must fail silently and the
	// stale cutoff survive.
	ctl.Observe(1, 1)
	ctl.Observe(2, 5)
	if ctl.Observe(3, 11) {
		t.Fatal("sparse epoch produced a plan")
	}
	if ctl.Cutoff() != 40 {
		t.Fatalf("stale plan lost: K=%d", ctl.Cutoff())
	}
}
