package adaptive

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/rng"
	"hybridqos/internal/trace"
	"hybridqos/internal/zipf"
)

// ClosedLoopConfig drives the full §3 loop: simulate an epoch, observe the
// request stream, re-fit the workload, re-rank the push set and re-plan the
// cutoff, then simulate the next epoch with the updated server — against a
// ground-truth popularity that DRIFTS (the true ranking rotates each epoch).
type ClosedLoopConfig struct {
	// Lengths are the per-item transmission lengths, indexed by item id−1.
	Lengths []float64
	// Classes is the service classification.
	Classes *clients.Classification
	// Lambda is the true aggregate request rate.
	Lambda float64
	// ThetaTrue is the true Zipf skew of the drifting popularity.
	ThetaTrue float64
	// ShiftPerEpoch rotates the true ranking this many positions each epoch
	// (0 = stationary).
	ShiftPerEpoch int
	// Alpha is the pull policy's mixing fraction.
	Alpha float64
	// InitialCutoff seeds the first epoch.
	InitialCutoff int
	// Epochs is the number of epochs to run (≥ 1).
	Epochs int
	// EpochLen is each epoch's simulated duration.
	EpochLen float64
	// Adapt enables re-ranking and re-planning between epochs; false runs
	// the frozen baseline (same server all epochs) for comparison.
	Adapt bool
	// Seed drives all randomness.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c ClosedLoopConfig) Validate() error {
	if len(c.Lengths) < 2 {
		return fmt.Errorf("adaptive: need at least 2 items, got %d", len(c.Lengths))
	}
	if c.Classes == nil {
		return fmt.Errorf("adaptive: nil classification")
	}
	if c.Lambda <= 0 || math.IsNaN(c.Lambda) {
		return fmt.Errorf("adaptive: invalid lambda %g", c.Lambda)
	}
	if c.ThetaTrue < 0 || math.IsNaN(c.ThetaTrue) {
		return fmt.Errorf("adaptive: invalid theta %g", c.ThetaTrue)
	}
	if c.ShiftPerEpoch < 0 {
		return fmt.Errorf("adaptive: negative shift %d", c.ShiftPerEpoch)
	}
	if c.Alpha < 0 || c.Alpha > 1 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("adaptive: alpha %g", c.Alpha)
	}
	if c.InitialCutoff < 0 || c.InitialCutoff > len(c.Lengths) {
		return fmt.Errorf("adaptive: initial cutoff %d", c.InitialCutoff)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("adaptive: epochs %d", c.Epochs)
	}
	if c.EpochLen <= 0 || math.IsNaN(c.EpochLen) {
		return fmt.Errorf("adaptive: epoch length %g", c.EpochLen)
	}
	return nil
}

// EpochResult is one epoch's measured performance and the plan adopted for
// the NEXT epoch.
type EpochResult struct {
	// Epoch is 0-based.
	Epoch int
	// Cutoff is the K used DURING this epoch.
	Cutoff int
	// OverallDelay and TotalCost are the epoch's measured metrics.
	OverallDelay, TotalCost float64
	// ThetaHat and LambdaHat are the post-epoch workload estimates (0 when
	// the epoch produced too little data or Adapt is off).
	ThetaHat, LambdaHat float64
	// NextCutoff is the plan adopted for the following epoch.
	NextCutoff int
}

// driftSampler emits ranks in the SERVER's believed order while the true
// popularity drifts underneath: a request first draws a true-popularity
// rank, maps it to the item id currently holding that rank, then to the
// position the server currently believes that item has.
type driftSampler struct {
	dist *zipf.Distribution
	// idAtTrueRank maps the epoch's true rank → item id.
	idAtTrueRank []int
	// believedPos maps item id → the server catalog's rank.
	believedPos []int
}

// Name implements workload.ItemSampler.
func (d *driftSampler) Name() string { return "closed-loop-drift" }

// SampleItem implements workload.ItemSampler.
func (d *driftSampler) SampleItem(r *rng.Source, _ float64) int {
	trueRank := d.dist.Sample(r)
	id := d.idAtTrueRank[trueRank-1]
	return d.believedPos[id-1]
}

// arrivalObserver feeds traced arrivals into an Estimator.
type arrivalObserver struct {
	est *Estimator
}

// Event implements trace.Tracer.
func (a arrivalObserver) Event(e trace.Event) {
	if e.Kind == trace.KindArrival {
		a.est.Observe(e.Item)
	}
}

// ClosedLoop runs the epoch chain and returns per-epoch results. Queue
// state does not carry across epochs (each epoch is a fresh transient-
// trimmed run); the carried state is the controller's: the believed
// ranking, the fitted workload, and the cutoff.
//
// A regime observation the tests pin down: adaptation always lags the truth
// by one epoch. When the per-epoch ranking turnover is SMALL relative to
// the push-set size, tracking wins — the frozen server's staleness grows
// without bound while the adaptive one's stays one epoch deep. When the
// turnover per epoch is comparable to the push-set size, a small re-planned
// push set can be MORE fragile than a large frozen one (a one-epoch-stale
// top-20 may overlap the true top-20 in almost nothing, while a stale
// top-40 still covers much of it): under fast drift the right move is a
// LARGER push set, not faster re-planning.
func ClosedLoop(cfg ClosedLoopConfig) ([]EpochResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := len(cfg.Lengths)

	// Believed order: item ids, hottest first. Starts as identity.
	believed := make([]int, d)
	for i := range believed {
		believed[i] = i + 1
	}
	trueDist, err := zipf.New(d, cfg.ThetaTrue)
	if err != nil {
		return nil, err
	}

	cutoff := cfg.InitialCutoff
	thetaHat := cfg.ThetaTrue // initial belief = truth; drift will stress it
	var results []EpochResult

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Ground truth this epoch: item id at true rank r.
		idAtTrueRank := make([]int, d)
		for r := 0; r < d; r++ {
			idAtTrueRank[r] = (r+epoch*cfg.ShiftPerEpoch)%d + 1
		}
		// Server catalog: lengths in believed order, probs Zipf(θ̂).
		lengths := make([]float64, d)
		believedPos := make([]int, d)
		for pos, id := range believed {
			lengths[pos] = cfg.Lengths[id-1]
			believedPos[id-1] = pos + 1
		}
		cat, err := catalog.FromLengths(lengths, thetaHat)
		if err != nil {
			return nil, err
		}
		sampler := &driftSampler{
			dist:         trueDist,
			idAtTrueRank: idAtTrueRank,
			believedPos:  believedPos,
		}
		est, err := NewEstimator(d)
		if err != nil {
			return nil, err
		}
		runCfg := core.Config{
			Catalog:        cat,
			Classes:        cfg.Classes,
			Lambda:         cfg.Lambda,
			Cutoff:         cutoff,
			Alpha:          cfg.Alpha,
			Items:          sampler,
			Tracer:         arrivalObserver{est: est},
			Horizon:        cfg.EpochLen,
			WarmupFraction: 0.1,
			Seed:           cfg.Seed + uint64(epoch),
		}
		m, err := core.Run(runCfg)
		if err != nil {
			return nil, err
		}
		res := EpochResult{
			Epoch:        epoch,
			Cutoff:       cutoff,
			OverallDelay: m.OverallMeanDelay(),
			TotalCost:    m.TotalCost(),
			NextCutoff:   cutoff,
		}

		if cfg.Adapt {
			planner := Planner{
				Classes: cfg.Classes,
				Alpha:   cfg.Alpha,
				Lengths: lengths, // believed-rank order, matching est's space
			}
			plan, err := planner.Replan(est, cfg.EpochLen)
			if err == nil {
				res.ThetaHat = plan.Theta
				res.LambdaHat = plan.Lambda
				res.NextCutoff = plan.Cutoff
				cutoff = plan.Cutoff
				thetaHat = plan.Theta
				// Re-rank: plan.Ranking orders BELIEVED ranks by observed
				// demand; compose with the current believed order to get
				// the new item-id order.
				newBelieved := make([]int, d)
				for pos, believedRank := range plan.Ranking {
					newBelieved[pos] = believed[believedRank-1]
				}
				believed = newBelieved
			}
		}
		results = append(results, res)
	}
	return results, nil
}
