// Package adaptive implements the paper's periodic cutoff re-optimisation
// (§3: "Periodically the algorithm is executed for different cutoff-points
// and obtains the optimal cutoff-point which minimizes the overall access
// time") as an online controller:
//
//  1. an Estimator observes the item rank of every request and maintains
//     per-item counts, from which it fits the Zipf skew θ by maximum
//     likelihood and estimates the arrival rate;
//  2. a Planner feeds the estimates into the refined analytic model and
//     returns the cost- (or delay-) optimal cutoff;
//  3. an EpochController glues them together: observe for an epoch,
//     re-plan, expose the recommended cutoff.
//
// Nothing here simulates: re-planning costs microseconds, which is what
// makes running it "periodically" on a live server plausible.
package adaptive

import (
	"fmt"
	"math"
	"sort"

	"hybridqos/internal/analytic"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
)

// Estimator accumulates request observations for one epoch.
type Estimator struct {
	counts []int64
	total  int64
}

// NewEstimator creates an estimator over a catalog of d items.
func NewEstimator(d int) (*Estimator, error) {
	if d < 2 {
		return nil, fmt.Errorf("adaptive: catalog size %d too small to fit a skew", d)
	}
	return &Estimator{counts: make([]int64, d)}, nil
}

// Observe records one request for the item at the given 1-based rank.
func (e *Estimator) Observe(rank int) {
	if rank < 1 || rank > len(e.counts) {
		panic(fmt.Sprintf("adaptive: rank %d out of [1,%d]", rank, len(e.counts)))
	}
	e.counts[rank-1]++
	e.total++
}

// Total returns the number of observations.
func (e *Estimator) Total() int64 { return e.total }

// Reset clears the window for the next epoch.
func (e *Estimator) Reset() {
	for i := range e.counts {
		e.counts[i] = 0
	}
	e.total = 0
}

// RankingByCount returns item ranks ordered by decreasing observed demand —
// the empirical popularity order a re-planned push set should follow. Ties
// break by original rank for determinism.
func (e *Estimator) RankingByCount() []int {
	order := make([]int, len(e.counts))
	for i := range order {
		order[i] = i + 1
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := e.counts[order[a]-1], e.counts[order[b]-1]
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	return order
}

// LambdaEstimate returns the observed request rate over a window of the
// given duration.
func (e *Estimator) LambdaEstimate(duration float64) (float64, error) {
	if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return 0, fmt.Errorf("adaptive: invalid window duration %g", duration)
	}
	return float64(e.total) / duration, nil
}

// ThetaMLE fits the Zipf skew by maximum likelihood to the SORTED observed
// counts: with n_(r) requests for the r-th most demanded item, it maximises
//
//	L(θ) = Σ_r n_(r)·ln P_r(θ),   P_r(θ) = r^(−θ) / Σ_j j^(−θ)
//
// over θ ∈ [0, 4] by golden-section search (L is unimodal in θ). It errors
// with fewer than 10 observations — too little signal to fit anything.
func (e *Estimator) ThetaMLE() (float64, error) {
	if e.total < 10 {
		return 0, fmt.Errorf("adaptive: only %d observations, need at least 10", e.total)
	}
	sorted := make([]int64, len(e.counts))
	copy(sorted, e.counts)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })

	logLik := func(theta float64) float64 {
		// Normaliser Z(θ) and Σ n_(r)·(−θ·ln r) in one pass.
		z := 0.0
		s := 0.0
		for r := 1; r <= len(sorted); r++ {
			z += math.Pow(float64(r), -theta)
			if sorted[r-1] > 0 {
				s += float64(sorted[r-1]) * (-theta) * math.Log(float64(r))
			}
		}
		return s - float64(e.total)*math.Log(z)
	}
	lo, hi := 0.0, 4.0
	const phi = 0.6180339887498949 // golden ratio − 1
	a := hi - phi*(hi-lo)
	b := lo + phi*(hi-lo)
	fa, fb := logLik(a), logLik(b)
	for i := 0; i < 100 && hi-lo > 1e-6; i++ {
		if fa < fb {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = logLik(b)
		} else {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = logLik(a)
		}
	}
	return (lo + hi) / 2, nil
}

// Plan is one re-optimisation outcome.
type Plan struct {
	// Cutoff is the recommended K.
	Cutoff int
	// Theta and Lambda are the estimates the plan was computed from.
	Theta, Lambda float64
	// PredictedCost and PredictedDelay are the model's values at Cutoff.
	PredictedCost, PredictedDelay float64
	// Ranking is the empirical popularity order the push set should use
	// (ranks into the ORIGINAL catalog, hottest first).
	Ranking []int
}

// Planner turns estimates into a cutoff recommendation via the refined
// analytic model.
type Planner struct {
	// Classes is the service classification.
	Classes *clients.Classification
	// Alpha is the pull policy's mixing fraction.
	Alpha float64
	// Lengths are the catalog item lengths in ORIGINAL rank order.
	Lengths []float64
	// KMin and KMax bound the search.
	KMin, KMax int
	// ByDelay selects the mean-delay objective instead of total cost.
	ByDelay bool
}

// Replan fits the model to the estimator's current window and returns the
// optimal cutoff. windowDuration is the epoch length in broadcast units.
func (p Planner) Replan(e *Estimator, windowDuration float64) (Plan, error) {
	if p.Classes == nil {
		return Plan{}, fmt.Errorf("adaptive: nil classification")
	}
	if len(p.Lengths) != len(e.counts) {
		return Plan{}, fmt.Errorf("adaptive: %d lengths for %d items", len(p.Lengths), len(e.counts))
	}
	theta, err := e.ThetaMLE()
	if err != nil {
		return Plan{}, err
	}
	lambda, err := e.LambdaEstimate(windowDuration)
	if err != nil {
		return Plan{}, err
	}
	if lambda <= 0 {
		return Plan{}, fmt.Errorf("adaptive: zero observed arrival rate")
	}
	ranking := e.RankingByCount()
	// Re-rank the length vector to the empirical popularity order: the
	// model's rank r is the r-th most demanded item.
	lengths := make([]float64, len(ranking))
	for r, orig := range ranking {
		lengths[r] = p.Lengths[orig-1]
	}
	cat, err := catalog.FromLengths(lengths, theta)
	if err != nil {
		return Plan{}, err
	}
	model := analytic.Model{
		Catalog:     cat,
		Classes:     p.Classes,
		LambdaTotal: lambda,
		Alpha:       p.Alpha,
		Variant:     analytic.Refined,
	}
	kMin, kMax := p.KMin, p.KMax
	if kMin <= 0 {
		kMin = 1
	}
	if kMax <= 0 || kMax > cat.D()-1 {
		kMax = cat.D() - 1
	}
	objective := analytic.ByTotalCost
	if p.ByDelay {
		objective = analytic.ByOverallDelay
	}
	best, err := model.OptimalCutoff(kMin, kMax, objective)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Cutoff:         best.K,
		Theta:          theta,
		Lambda:         lambda,
		PredictedCost:  best.TotalCost,
		PredictedDelay: best.Overall,
		Ranking:        ranking,
	}, nil
}

// EpochController runs the observe/replan loop.
type EpochController struct {
	planner   Planner
	estimator *Estimator
	epochLen  float64
	epochEnd  float64
	current   Plan
	planned   bool
	// History records every accepted plan (diagnostics).
	History []Plan
}

// NewEpochController creates a controller with an initial cutoff guess.
func NewEpochController(planner Planner, d int, epochLen float64, initialCutoff int) (*EpochController, error) {
	if epochLen <= 0 || math.IsNaN(epochLen) || math.IsInf(epochLen, 0) {
		return nil, fmt.Errorf("adaptive: invalid epoch length %g", epochLen)
	}
	if initialCutoff < 0 || initialCutoff > d {
		return nil, fmt.Errorf("adaptive: initial cutoff %d out of [0,%d]", initialCutoff, d)
	}
	est, err := NewEstimator(d)
	if err != nil {
		return nil, err
	}
	return &EpochController{
		planner:   planner,
		estimator: est,
		epochLen:  epochLen,
		epochEnd:  epochLen,
		current:   Plan{Cutoff: initialCutoff},
	}, nil
}

// Cutoff returns the currently recommended cutoff.
func (c *EpochController) Cutoff() int { return c.current.Cutoff }

// Planned reports whether at least one re-plan has happened.
func (c *EpochController) Planned() bool { return c.planned }

// Observe feeds one request (rank at simulated time now) and re-plans when
// the epoch boundary passes. It returns true when a new plan was adopted.
func (c *EpochController) Observe(rank int, now float64) bool {
	c.estimator.Observe(rank)
	if now < c.epochEnd {
		return false
	}
	plan, err := c.planner.Replan(c.estimator, c.epochLen)
	c.estimator.Reset()
	c.epochEnd = now + c.epochLen
	if err != nil {
		return false // keep the previous plan; too little data this epoch
	}
	c.current = plan
	c.planned = true
	c.History = append(c.History, plan)
	return true
}
