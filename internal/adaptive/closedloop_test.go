package adaptive

import (
	"math"
	"testing"

	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
)

func closedLoopConfig(t *testing.T) ClosedLoopConfig {
	t.Helper()
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	lengths := make([]float64, 100)
	for i := range lengths {
		lengths[i] = float64(r.IntRange(1, 5))
	}
	return ClosedLoopConfig{
		Lengths:       lengths,
		Classes:       cl,
		Lambda:        5,
		ThetaTrue:     1.0,
		ShiftPerEpoch: 20,
		Alpha:         0.5,
		InitialCutoff: 40,
		Epochs:        4,
		EpochLen:      6000,
		Adapt:         true,
		Seed:          11,
	}
}

func TestClosedLoopValidate(t *testing.T) {
	good := closedLoopConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*ClosedLoopConfig){
		func(c *ClosedLoopConfig) { c.Lengths = c.Lengths[:1] },
		func(c *ClosedLoopConfig) { c.Classes = nil },
		func(c *ClosedLoopConfig) { c.Lambda = 0 },
		func(c *ClosedLoopConfig) { c.ThetaTrue = -1 },
		func(c *ClosedLoopConfig) { c.ShiftPerEpoch = -1 },
		func(c *ClosedLoopConfig) { c.Alpha = 2 },
		func(c *ClosedLoopConfig) { c.InitialCutoff = 101 },
		func(c *ClosedLoopConfig) { c.Epochs = 0 },
		func(c *ClosedLoopConfig) { c.EpochLen = 0 },
	}
	for i, mutate := range mutations {
		cfg := closedLoopConfig(t)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestClosedLoopShape(t *testing.T) {
	cfg := closedLoopConfig(t)
	results, err := ClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Epochs {
		t.Fatalf("%d epoch results", len(results))
	}
	for i, r := range results {
		if r.Epoch != i {
			t.Fatalf("epoch numbering broken at %d", i)
		}
		if math.IsNaN(r.OverallDelay) || r.OverallDelay <= 0 {
			t.Fatalf("epoch %d delay %g", i, r.OverallDelay)
		}
	}
	// The first epoch runs the initial cutoff; adaptation must have
	// produced estimates afterwards.
	if results[0].Cutoff != cfg.InitialCutoff {
		t.Fatalf("epoch 0 cutoff %d", results[0].Cutoff)
	}
	if results[0].ThetaHat == 0 {
		t.Fatal("no workload estimate after epoch 0")
	}
	if math.Abs(results[0].ThetaHat-1.0) > 0.15 {
		t.Fatalf("epoch-0 θ̂ = %g, want ~1.0", results[0].ThetaHat)
	}
	if math.Abs(results[0].LambdaHat-5) > 0.5 {
		t.Fatalf("epoch-0 λ̂ = %g, want ~5", results[0].LambdaHat)
	}
}

func TestClosedLoopDeterministic(t *testing.T) {
	cfg := closedLoopConfig(t)
	cfg.Epochs = 2
	cfg.EpochLen = 3000
	a, err := ClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].OverallDelay != b[i].OverallDelay || a[i].NextCutoff != b[i].NextCutoff {
			t.Fatalf("epoch %d diverged across identical runs", i)
		}
	}
}

func TestClosedLoopAdaptationBeatsFrozen(t *testing.T) {
	// Under SLOW drift (slower than the epoch cadence) the adaptive loop
	// must end up cheaper than the frozen server whose push set goes
	// progressively stale: compare the mean cost over the post-adaptation
	// epochs. (Fast drift — ranking turnover per epoch comparable to the
	// push-set size — is a different regime: adaptation lags one epoch, and
	// a small re-planned push set is MORE fragile to that lag than a large
	// frozen one; see the ClosedLoop doc comment.)
	cfg := closedLoopConfig(t)
	cfg.Epochs = 8
	cfg.ShiftPerEpoch = 5
	adaptive, err := ClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frozen := cfg
	frozen.Adapt = false
	baseline, err := ClosedLoop(frozen)
	if err != nil {
		t.Fatal(err)
	}
	meanCost := func(rs []EpochResult) float64 {
		sum := 0.0
		for _, r := range rs[1:] { // epoch 0 is identical by construction
			sum += r.TotalCost
		}
		return sum / float64(len(rs)-1)
	}
	a, f := meanCost(adaptive), meanCost(baseline)
	if a >= f {
		t.Fatalf("adaptive mean cost %.1f not below frozen %.1f", a, f)
	}
}

func TestClosedLoopStationaryNoHarm(t *testing.T) {
	// Without drift, adaptation must not make things meaningfully worse
	// than the frozen server (it may differ slightly through re-planning).
	cfg := closedLoopConfig(t)
	cfg.ShiftPerEpoch = 0
	cfg.Epochs = 3
	adaptive, err := ClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frozen := cfg
	frozen.Adapt = false
	baseline, err := ClosedLoop(frozen)
	if err != nil {
		t.Fatal(err)
	}
	last := len(adaptive) - 1
	if adaptive[last].TotalCost > baseline[last].TotalCost*1.15 {
		t.Fatalf("stationary adaptation cost %.1f vs frozen %.1f",
			adaptive[last].TotalCost, baseline[last].TotalCost)
	}
}
