package markov

import (
	"math"
	"testing"
	"testing/quick"
)

// mm1c builds an M/M/1/C queue chain: states 0..c, birth rate lambda,
// death rate mu.
func mm1c(lambda, mu float64, c int) *Chain {
	ch := NewChain(c + 1)
	for i := 0; i < c; i++ {
		ch.AddRate(i, i+1, lambda)
		ch.AddRate(i+1, i, mu)
	}
	return ch
}

// mm1cExact returns the textbook stationary distribution of M/M/1/C.
func mm1cExact(lambda, mu float64, c int) []float64 {
	rho := lambda / mu
	pi := make([]float64, c+1)
	sum := 0.0
	for i := 0; i <= c; i++ {
		pi[i] = math.Pow(rho, float64(i))
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi
}

func TestNewChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChain(0) did not panic")
		}
	}()
	NewChain(0)
}

func TestAddRatePanics(t *testing.T) {
	ch := NewChain(3)
	cases := []func(){
		func() { ch.AddRate(-1, 0, 1) },
		func() { ch.AddRate(0, 3, 1) },
		func() { ch.AddRate(0, 1, -1) },
		func() { ch.AddRate(0, 1, math.NaN()) },
		func() { ch.AddRate(0, 1, math.Inf(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	ch := NewChain(2)
	ch.AddRate(0, 0, 100)
	ch.AddRate(0, 1, 1)
	ch.AddRate(1, 0, 1)
	pi, err := ch.StationaryDense()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-12 {
		t.Fatalf("self-loop distorted stationary: %v", pi)
	}
}

func TestTwoStateChain(t *testing.T) {
	// 0 -(a)-> 1, 1 -(b)-> 0: pi = (b, a)/(a+b).
	a, b := 2.0, 3.0
	ch := NewChain(2)
	ch.AddRate(0, 1, a)
	ch.AddRate(1, 0, b)
	for name, solve := range map[string]func() ([]float64, error){
		"dense": ch.StationaryDense,
		"power": func() ([]float64, error) { return ch.StationaryPower(1e-13, 1e6) },
	} {
		pi, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(pi[0]-b/(a+b)) > 1e-9 || math.Abs(pi[1]-a/(a+b)) > 1e-9 {
			t.Fatalf("%s: pi = %v", name, pi)
		}
	}
}

func TestMM1CAgainstClosedForm(t *testing.T) {
	for _, tc := range []struct {
		lambda, mu float64
		c          int
	}{
		{1, 2, 10}, {3, 4, 20}, {0.5, 1, 5}, {2, 2, 8}, // includes rho=1
	} {
		ch := mm1c(tc.lambda, tc.mu, tc.c)
		want := mm1cExact(tc.lambda, tc.mu, tc.c)
		pi, err := ch.StationaryDense()
		if err != nil {
			t.Fatalf("lambda=%g: %v", tc.lambda, err)
		}
		for i := range want {
			if math.Abs(pi[i]-want[i]) > 1e-9 {
				t.Fatalf("lambda=%g mu=%g C=%d state %d: pi=%g want %g", tc.lambda, tc.mu, tc.c, i, pi[i], want[i])
			}
		}
	}
}

func TestPowerMatchesDense(t *testing.T) {
	ch := mm1c(2, 3, 30)
	dense, err := ch.StationaryDense()
	if err != nil {
		t.Fatal(err)
	}
	power, err := ch.StationaryPower(1e-13, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if math.Abs(dense[i]-power[i]) > 1e-7 {
			t.Fatalf("state %d: dense %g vs power %g", i, dense[i], power[i])
		}
	}
}

func TestStationaryAutoSelect(t *testing.T) {
	pi, err := mm1c(1, 2, 10).Stationary()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("auto-selected solution sums to %g", sum)
	}
}

func TestReducibleChainErrors(t *testing.T) {
	// Two disconnected components: stationary distribution is not unique.
	ch := NewChain(4)
	ch.AddRate(0, 1, 1)
	ch.AddRate(1, 0, 1)
	ch.AddRate(2, 3, 1)
	ch.AddRate(3, 2, 1)
	if _, err := ch.StationaryDense(); err == nil {
		t.Fatal("reducible chain solved without error")
	}
}

func TestEmptyChainPowerErrors(t *testing.T) {
	ch := NewChain(3)
	if _, err := ch.StationaryPower(1e-10, 1000); err == nil {
		t.Fatal("transition-free chain converged")
	}
}

func TestPowerBadArgs(t *testing.T) {
	ch := mm1c(1, 2, 3)
	if _, err := ch.StationaryPower(0, 100); err == nil {
		t.Fatal("tol=0 accepted")
	}
	if _, err := ch.StationaryPower(1e-10, 0); err == nil {
		t.Fatal("maxIter=0 accepted")
	}
}

func TestExpectAndProbWhere(t *testing.T) {
	pi := []float64{0.2, 0.3, 0.5}
	// E[state] = 0*0.2 + 1*0.3 + 2*0.5 = 1.3
	if got := Expect(pi, func(s int) float64 { return float64(s) }); math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("Expect = %g", got)
	}
	if got := ProbWhere(pi, func(s int) bool { return s >= 1 }); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("ProbWhere = %g", got)
	}
}

func TestMM1CExpectedQueueLength(t *testing.T) {
	// For M/M/1/C with rho<1 and large C, E[N] approaches rho/(1-rho).
	lambda, mu := 1.0, 2.0
	pi, err := mm1c(lambda, mu, 200).StationaryDense()
	if err != nil {
		t.Fatal(err)
	}
	got := Expect(pi, func(s int) float64 { return float64(s) })
	want := 0.5 / (1 - 0.5)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("E[N] = %g, want ~%g", got, want)
	}
}

// Property: for random irreducible birth-death chains both solvers agree and
// produce a valid distribution satisfying detailed balance.
func TestPropertyBirthDeathDetailedBalance(t *testing.T) {
	check := func(lamRaw, muRaw, cRaw uint8) bool {
		lambda := float64(lamRaw%50)/10 + 0.1
		mu := float64(muRaw%50)/10 + 0.1
		c := int(cRaw%20) + 2
		ch := mm1c(lambda, mu, c)
		pi, err := ch.StationaryDense()
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i <= c; i++ {
			if pi[i] < -1e-12 {
				return false
			}
			sum += pi[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Detailed balance: pi[i]·λ = pi[i+1]·μ.
		for i := 0; i < c; i++ {
			if math.Abs(pi[i]*lambda-pi[i+1]*mu) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDenseSolve200(b *testing.B) {
	ch := mm1c(2, 3, 199)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.StationaryDense(); err != nil {
			b.Fatal(err)
		}
	}
}
