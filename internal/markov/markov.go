// Package markov provides a continuous-time Markov chain (CTMC) stationary
// solver. The paper's performance model (section 4) is a family of CTMCs —
// the push/pull birth–death chain of §4.1 and the two-priority-class chain of
// §4.2.1 — whose printed closed forms are under-determined (they contain the
// unresolved terms N and P_{0,2}(z)). We instead solve truncations of the
// same chains exactly, which is what Figure 7's "analytical" curve needs.
//
// Two solvers are provided: a direct dense Gaussian elimination (exact, for
// chains up to a few thousand states) and uniformization + power iteration
// (for larger chains); tests cross-validate them against each other and
// against textbook queues with known closed forms.
package markov

import (
	"fmt"
	"math"
)

// transition is one outgoing rate edge.
type transition struct {
	to   int
	rate float64
}

// Chain is a finite-state CTMC under construction. States are dense integers
// 0..n-1.
type Chain struct {
	n     int
	edges [][]transition
	out   []float64 // total outgoing rate per state
}

// NewChain creates a chain with n states and no transitions. n must be
// positive.
func NewChain(n int) *Chain {
	if n <= 0 {
		panic(fmt.Sprintf("markov: chain size %d", n))
	}
	return &Chain{
		n:     n,
		edges: make([][]transition, n),
		out:   make([]float64, n),
	}
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// AddRate adds a transition from -> to with the given rate. Self-loops are
// ignored (they do not affect a CTMC's stationary distribution). Negative,
// NaN or infinite rates panic; zero rates are dropped.
func (c *Chain) AddRate(from, to int, rate float64) {
	if from < 0 || from >= c.n || to < 0 || to >= c.n {
		panic(fmt.Sprintf("markov: transition %d->%d out of [0,%d)", from, to, c.n))
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("markov: invalid rate %g for %d->%d", rate, from, to))
	}
	if rate == 0 || from == to {
		return
	}
	c.edges[from] = append(c.edges[from], transition{to: to, rate: rate})
	c.out[from] += rate
}

// maxOutRate returns the largest total outgoing rate, the uniformization
// constant's lower bound.
func (c *Chain) maxOutRate() float64 {
	m := 0.0
	for _, r := range c.out {
		if r > m {
			m = r
		}
	}
	return m
}

// StationaryPower computes the stationary distribution by uniformization and
// power iteration: P = I + Q/Λ with Λ slightly above the max exit rate, then
// π ← πP until the L1 change drops below tol. Returns an error if the chain
// has no transitions or the iteration fails to converge within maxIter
// sweeps. The chain must be irreducible for the result to be meaningful.
func (c *Chain) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 || maxIter <= 0 {
		return nil, fmt.Errorf("markov: invalid tol %g or maxIter %d", tol, maxIter)
	}
	lambda := c.maxOutRate() * 1.05
	if lambda == 0 {
		return nil, fmt.Errorf("markov: chain has no transitions")
	}
	pi := make([]float64, c.n)
	next := make([]float64, c.n)
	for i := range pi {
		pi[i] = 1 / float64(c.n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for from := 0; from < c.n; from++ {
			p := pi[from]
			if p == 0 {
				continue
			}
			// Self term of the uniformized DTMC.
			next[from] += p * (1 - c.out[from]/lambda)
			for _, tr := range c.edges[from] {
				next[tr.to] += p * tr.rate / lambda
			}
		}
		diff := 0.0
		sum := 0.0
		for i := range next {
			diff += math.Abs(next[i] - pi[i])
			sum += next[i]
		}
		// Renormalise against floating-point drift.
		for i := range next {
			next[i] /= sum
		}
		pi, next = next, pi
		if diff < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d sweeps", maxIter)
}

// StationaryDense computes the stationary distribution exactly by solving
// πQ = 0 with Σπ = 1 via dense Gaussian elimination with partial pivoting.
// Intended for chains up to a few thousand states. The chain must be
// irreducible; a singular system returns an error.
func (c *Chain) StationaryDense() ([]float64, error) {
	n := c.n
	// Build A = Qᵀ (columns of Q become rows: A[i][j] = Q[j][i]), then
	// replace the last row with the normalisation Σπ = 1.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for from := 0; from < n; from++ {
		a[from][from] -= c.out[from]
		for _, tr := range c.edges[from] {
			a[tr.to][from] += tr.rate
		}
	}
	// Transposed generator built directly above: a[i][j] = Q[j][i].
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1

	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("markov: singular system at column %d (chain not irreducible?)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] * inv
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	pi := make([]float64, n)
	for i := 0; i < n; i++ {
		pi[i] = a[i][n] / a[i][i]
		if pi[i] < 0 && pi[i] > -1e-9 {
			pi[i] = 0 // clamp tiny negative round-off
		}
		if pi[i] < 0 {
			return nil, fmt.Errorf("markov: negative stationary probability %g at state %d", pi[i], i)
		}
	}
	return pi, nil
}

// Stationary picks a solver automatically: dense for chains up to
// denseLimit states, power iteration beyond.
func (c *Chain) Stationary() ([]float64, error) {
	const denseLimit = 1200
	if c.n <= denseLimit {
		return c.StationaryDense()
	}
	return c.StationaryPower(1e-12, 2_000_000)
}

// Expect returns Σ_s π[s]·f(s), the stationary expectation of a state
// functional.
func Expect(pi []float64, f func(state int) float64) float64 {
	sum := 0.0
	for s, p := range pi {
		sum += p * f(s)
	}
	return sum
}

// ProbWhere returns the stationary probability mass of states satisfying the
// predicate.
func ProbWhere(pi []float64, pred func(state int) bool) float64 {
	sum := 0.0
	for s, p := range pi {
		if pred(s) {
			sum += p
		}
	}
	return sum
}
