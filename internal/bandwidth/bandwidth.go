// Package bandwidth models the downlink bandwidth partitioning of the hybrid
// scheduler. Section 3 of the paper: each service class is assigned a
// fraction of the available bandwidth; the bandwidth an item transmission
// requires is random (Poisson); when the requirement exceeds what the
// governing class has available, "the data item and the corresponding
// requests are lost" — i.e. blocked. Section 5/abstract: assigning an
// appropriate fraction to the highest-priority class keeps its blocking
// (dropped requests) low.
//
// The model: a total capacity of Total bandwidth units is split into
// per-class pools. A transmission on behalf of class c draws a demand
// b ~ 1 + Poisson(DemandMean·L) and attempts to reserve b units from pool c;
// Release returns them. Blocking statistics are kept per class. An optional
// shared-overflow mode (beyond the paper) lets a class borrow idle bandwidth
// from lower-priority pools, implemented as an ablation.
package bandwidth

import (
	"fmt"
	"math"

	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
)

// Config parameterises an Allocator.
type Config struct {
	// Total is the total downlink bandwidth in units.
	Total float64
	// Fractions gives each class's share of Total, class 0 first. Must be
	// positive and sum to 1 (±1e-9).
	Fractions []float64
	// DemandMean scales the Poisson bandwidth demand: an item of length L
	// draws 1 + Poisson(DemandMean·L) units.
	DemandMean float64
	// AllowBorrow enables overflow into lower-priority pools when the
	// governing class's own pool cannot cover the demand (ablation mode;
	// the paper's scheme is strict partitioning).
	AllowBorrow bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Total <= 0 || math.IsNaN(c.Total) || math.IsInf(c.Total, 0) {
		return fmt.Errorf("bandwidth: invalid total %g", c.Total)
	}
	if len(c.Fractions) == 0 {
		return fmt.Errorf("bandwidth: no class fractions")
	}
	sum := 0.0
	for i, f := range c.Fractions {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("bandwidth: invalid fraction %g for class %d", f, i)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("bandwidth: fractions sum to %g, want 1", sum)
	}
	if c.DemandMean < 0 || math.IsNaN(c.DemandMean) || math.IsInf(c.DemandMean, 0) {
		return fmt.Errorf("bandwidth: invalid demand mean %g", c.DemandMean)
	}
	return nil
}

// EqualSplit returns per-class fractions 1/n each.
func EqualSplit(n int) []float64 {
	fr := make([]float64, n)
	for i := range fr {
		fr[i] = 1 / float64(n)
	}
	return fr
}

// PaperConfig returns the default partitioning used in the reproduction:
// total 30 units split 50%/30%/20% favouring Class-A, demand mean 2 per
// length unit. (The paper does not publish its exact numbers; these produce
// the qualitative behaviour §5 reports — near-zero Class-A blocking.)
func PaperConfig() Config {
	return Config{Total: 30, Fractions: []float64{0.5, 0.3, 0.2}, DemandMean: 2}
}

// poolTake records how many units a grant took from one pool.
type poolTake struct {
	pool  int
	units float64
}

// Grant is a successful reservation, to be handed back via Release.
type Grant struct {
	class  clients.Class
	takes  []poolTake
	amount float64
}

// Amount returns the granted bandwidth units.
func (g *Grant) Amount() float64 { return g.amount }

// Class returns the governing class the grant was made for.
func (g *Grant) Class() clients.Class { return g.class }

// ClassStats aggregates outcomes for one class.
type ClassStats struct {
	// Attempts counts reservation attempts.
	Attempts int64
	// Blocked counts attempts rejected for insufficient bandwidth.
	Blocked int64
	// UnitsGranted sums granted bandwidth units.
	UnitsGranted float64
}

// BlockingRate returns Blocked/Attempts, or 0 when no attempts were made.
func (s ClassStats) BlockingRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Attempts)
}

// Allocator manages the per-class pools.
type Allocator struct {
	cfg       Config
	capacity  []float64 // per-class capacity
	available []float64 // per-class currently free
	stats     []ClassStats
	rng       *rng.Source
}

// New builds an Allocator. The rng source drives the Poisson demand draws.
func New(cfg Config, src *rng.Source) (*Allocator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("bandwidth: nil rng source")
	}
	a := &Allocator{
		cfg:       cfg,
		capacity:  make([]float64, len(cfg.Fractions)),
		available: make([]float64, len(cfg.Fractions)),
		stats:     make([]ClassStats, len(cfg.Fractions)),
		rng:       src,
	}
	for i, f := range cfg.Fractions {
		a.capacity[i] = cfg.Total * f
		a.available[i] = a.capacity[i]
	}
	return a, nil
}

// Must is New that panics on error.
func Must(cfg Config, src *rng.Source) *Allocator {
	a, err := New(cfg, src)
	if err != nil {
		panic(fmt.Errorf("bandwidth: Must: %w", err))
	}
	return a
}

// NumClasses returns the number of pools.
func (a *Allocator) NumClasses() int { return len(a.capacity) }

// Capacity returns class c's total pool size.
func (a *Allocator) Capacity(c clients.Class) float64 {
	a.check(c)
	return a.capacity[c]
}

// Available returns class c's currently free bandwidth.
func (a *Allocator) Available(c clients.Class) float64 {
	a.check(c)
	return a.available[c]
}

// Stats returns a copy of class c's outcome counters.
func (a *Allocator) Stats(c clients.Class) ClassStats {
	a.check(c)
	return a.stats[c]
}

// Demand draws the Poisson bandwidth requirement for an item of the given
// length: 1 + Poisson(DemandMean·length) units (the +1 keeps demands
// strictly positive as a zero-bandwidth transmission is meaningless).
func (a *Allocator) Demand(length float64) float64 {
	if length <= 0 || math.IsNaN(length) {
		panic(fmt.Sprintf("bandwidth: invalid length %g", length))
	}
	return 1 + float64(a.rng.Poisson(a.cfg.DemandMean*length))
}

// Reserve attempts to reserve bandwidth for an item of the given length on
// behalf of class c. It draws the Poisson demand, then either grants it
// (possibly borrowing from lower-priority pools when AllowBorrow is set) or
// blocks. A nil grant with blocked=true means the item and its pending
// requests are lost, per the paper.
func (a *Allocator) Reserve(c clients.Class, length float64) (g *Grant, blocked bool) {
	a.check(c)
	demand := a.Demand(length)
	a.stats[c].Attempts++

	if a.available[c] >= demand {
		a.available[c] -= demand
		a.stats[c].UnitsGranted += demand
		return &Grant{class: c, takes: []poolTake{{int(c), demand}}, amount: demand}, false
	}

	if a.cfg.AllowBorrow {
		// Take everything from own pool, then spill into lower-priority
		// pools (higher class index), lowest priority first.
		free := a.available[c]
		order := []int{int(c)}
		for p := len(a.available) - 1; p > int(c) && free < demand; p-- {
			if a.available[p] > 0 {
				free += a.available[p]
				order = append(order, p)
			}
		}
		if free >= demand {
			remaining := demand
			takes := make([]poolTake, 0, len(order))
			for _, p := range order {
				if remaining <= 0 {
					break
				}
				take := math.Min(a.available[p], remaining)
				if take > 0 {
					a.available[p] -= take
					takes = append(takes, poolTake{p, take})
					remaining -= take
				}
			}
			a.stats[c].UnitsGranted += demand
			return &Grant{class: c, takes: takes, amount: demand}, false
		}
	}

	a.stats[c].Blocked++
	return nil, true
}

// Release returns a grant's bandwidth to exactly the pools it was taken
// from. Releasing nil or an already-released grant panics: it indicates
// double accounting in the scheduler.
func (a *Allocator) Release(g *Grant) {
	if g == nil || g.takes == nil {
		panic("bandwidth: releasing nil or already-released grant")
	}
	for _, tk := range g.takes {
		a.available[tk.pool] += tk.units
		if a.available[tk.pool] > a.capacity[tk.pool]+1e-9 {
			panic(fmt.Sprintf("bandwidth: pool %d overfilled to %g (capacity %g)", tk.pool, a.available[tk.pool], a.capacity[tk.pool]))
		}
	}
	g.takes = nil
}

// TotalAvailable returns the sum of free bandwidth across all pools.
func (a *Allocator) TotalAvailable() float64 {
	sum := 0.0
	for _, v := range a.available {
		sum += v
	}
	return sum
}

func (a *Allocator) check(c clients.Class) {
	if c < 0 || int(c) >= len(a.capacity) {
		panic(fmt.Sprintf("bandwidth: class %d out of [0,%d)", int(c), len(a.capacity)))
	}
}
