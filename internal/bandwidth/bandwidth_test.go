package bandwidth

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
)

func clientsClass(c int) clients.Class { return clients.Class(c) }

func alloc(t *testing.T, cfg Config) *Allocator {
	t.Helper()
	a, err := New(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Total: 0, Fractions: []float64{1}},
		{Total: -1, Fractions: []float64{1}},
		{Total: math.NaN(), Fractions: []float64{1}},
		{Total: 10},
		{Total: 10, Fractions: []float64{0.5, 0.6}},
		{Total: 10, Fractions: []float64{0.5, -0.5, 1.0}},
		{Total: 10, Fractions: []float64{1}, DemandMean: -1},
		{Total: 10, Fractions: []float64{1}, DemandMean: math.Inf(1)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config validated: %+v", i, cfg)
		}
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Errorf("PaperConfig invalid: %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(PaperConfig(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := New(Config{}, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEqualSplit(t *testing.T) {
	fr := EqualSplit(4)
	for _, f := range fr {
		if f != 0.25 {
			t.Fatalf("EqualSplit(4) = %v", fr)
		}
	}
	if err := (Config{Total: 1, Fractions: EqualSplit(7)}).Validate(); err != nil {
		t.Fatalf("EqualSplit(7) fractions invalid: %v", err)
	}
}

func TestCapacityPartition(t *testing.T) {
	a := alloc(t, PaperConfig())
	if a.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", a.NumClasses())
	}
	if a.Capacity(0) != 15 || a.Capacity(1) != 9 || a.Capacity(2) != 6 {
		t.Fatalf("capacities = %g,%g,%g", a.Capacity(0), a.Capacity(1), a.Capacity(2))
	}
	if a.TotalAvailable() != 30 {
		t.Fatalf("TotalAvailable = %g", a.TotalAvailable())
	}
}

func TestDemandDistribution(t *testing.T) {
	a := alloc(t, Config{Total: 100, Fractions: []float64{1}, DemandMean: 2})
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		d := a.Demand(3)
		if d < 1 {
			t.Fatalf("demand %g < 1", d)
		}
		sum += d
	}
	// mean = 1 + 2*3 = 7
	if got := sum / n; math.Abs(got-7) > 0.1 {
		t.Fatalf("mean demand %g, want ~7", got)
	}
}

func TestDemandZeroMeanIsDeterministic(t *testing.T) {
	a := alloc(t, Config{Total: 10, Fractions: []float64{1}, DemandMean: 0})
	for i := 0; i < 10; i++ {
		if d := a.Demand(5); d != 1 {
			t.Fatalf("zero-mean demand = %g, want 1", d)
		}
	}
}

func TestDemandPanicsOnBadLength(t *testing.T) {
	a := alloc(t, PaperConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Demand(0) did not panic")
		}
	}()
	a.Demand(0)
}

func TestReserveAndRelease(t *testing.T) {
	a := alloc(t, Config{Total: 100, Fractions: []float64{0.5, 0.5}, DemandMean: 0})
	g, blocked := a.Reserve(0, 2) // demand = 1
	if blocked || g == nil {
		t.Fatal("reserve blocked with abundant bandwidth")
	}
	if g.Amount() != 1 || g.Class() != 0 {
		t.Fatalf("grant = %+v", g)
	}
	if a.Available(0) != 49 {
		t.Fatalf("available after reserve = %g", a.Available(0))
	}
	a.Release(g)
	if a.Available(0) != 50 {
		t.Fatalf("available after release = %g", a.Available(0))
	}
	st := a.Stats(0)
	if st.Attempts != 1 || st.Blocked != 0 || st.UnitsGranted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBlockingWhenPoolExhausted(t *testing.T) {
	// Pool of 2 units for class 0, deterministic demand 1 per reserve.
	a := alloc(t, Config{Total: 4, Fractions: []float64{0.5, 0.5}, DemandMean: 0})
	var grants []*Grant
	for i := 0; i < 2; i++ {
		g, blocked := a.Reserve(0, 1)
		if blocked {
			t.Fatalf("reserve %d blocked early", i)
		}
		grants = append(grants, g)
	}
	if _, blocked := a.Reserve(0, 1); !blocked {
		t.Fatal("third reserve should block: pool exhausted")
	}
	st := a.Stats(0)
	if st.Attempts != 3 || st.Blocked != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.BlockingRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("BlockingRate = %g", got)
	}
	// Class 1's pool is unaffected by class 0's exhaustion.
	if _, blocked := a.Reserve(1, 1); blocked {
		t.Fatal("class 1 blocked by class 0 exhaustion under strict partitioning")
	}
	for _, g := range grants {
		a.Release(g)
	}
	if a.Available(0) != 2 {
		t.Fatalf("class 0 pool not restored: %g", a.Available(0))
	}
}

func TestBorrowMode(t *testing.T) {
	// Class 0 pool is 1 unit; demand 2 forces borrowing from class 1.
	cfg := Config{Total: 4, Fractions: []float64{0.25, 0.75}, DemandMean: 0, AllowBorrow: true}
	a := alloc(t, cfg)
	// Drain class 0 with one demand-1 grant, then demand another: must borrow.
	g1, blocked := a.Reserve(0, 1)
	if blocked {
		t.Fatal("first reserve blocked")
	}
	g2, blocked := a.Reserve(0, 1)
	if blocked {
		t.Fatal("borrowing reserve blocked despite free lower-priority bandwidth")
	}
	if a.Available(1) != 2 {
		t.Fatalf("class 1 pool after borrow = %g, want 2", a.Available(1))
	}
	a.Release(g2)
	a.Release(g1)
	if a.Available(0) != 1 || a.Available(1) != 3 {
		t.Fatalf("pools after release = %g,%g", a.Available(0), a.Available(1))
	}
}

func TestBorrowNeverTakesFromHigherClass(t *testing.T) {
	cfg := Config{Total: 4, Fractions: []float64{0.75, 0.25}, DemandMean: 0, AllowBorrow: true}
	a := alloc(t, cfg)
	// Exhaust class 1 (capacity 1), then demand more: the only free
	// bandwidth is class 0's, which class 1 must NOT touch.
	if _, blocked := a.Reserve(1, 1); blocked {
		t.Fatal("first class-1 reserve blocked")
	}
	if _, blocked := a.Reserve(1, 1); !blocked {
		t.Fatal("class 1 borrowed from the higher-priority class-0 pool")
	}
	if a.Available(0) != 3 {
		t.Fatalf("class 0 pool touched: %g", a.Available(0))
	}
}

func TestReleasePanics(t *testing.T) {
	a := alloc(t, PaperConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release(nil) did not panic")
			}
		}()
		a.Release(nil)
	}()
	g, _ := a.Reserve(0, 1)
	a.Release(g)
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	a.Release(g)
}

func TestClassCheckPanics(t *testing.T) {
	a := alloc(t, PaperConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range class did not panic")
		}
	}()
	a.Reserve(3, 1)
}

func TestBlockingRateZeroAttempts(t *testing.T) {
	if got := (ClassStats{}).BlockingRate(); got != 0 {
		t.Fatalf("BlockingRate with 0 attempts = %g", got)
	}
}

func TestLargerFractionLowersBlocking(t *testing.T) {
	// The abstract's claim: giving the premium class a bigger share drops
	// its blocking. Stochastic demand, heavy usage without release.
	run := func(frac0 float64) float64 {
		cfg := Config{Total: 20, Fractions: []float64{frac0, 1 - frac0}, DemandMean: 1}
		a := Must(cfg, rng.New(42))
		var live []*Grant
		for i := 0; i < 5000; i++ {
			g, blocked := a.Reserve(0, 2)
			if !blocked {
				live = append(live, g)
			}
			// Release oldest half periodically to keep pressure on.
			if len(live) > 3 {
				a.Release(live[0])
				live = live[1:]
			}
		}
		return a.Stats(0).BlockingRate()
	}
	small, large := run(0.2), run(0.8)
	if large >= small {
		t.Fatalf("blocking with 80%% share (%g) not lower than with 20%% share (%g)", large, small)
	}
}

// Property: conservation — available never exceeds capacity, never negative,
// and reserve/release round-trips restore the total exactly.
func TestPropertyConservation(t *testing.T) {
	check := func(seed uint16, ops []uint8) bool {
		cfg := Config{Total: 30, Fractions: []float64{0.5, 0.3, 0.2}, DemandMean: 1}
		a := Must(cfg, rng.New(uint64(seed)))
		var live []*Grant
		for _, op := range ops {
			c := int(op % 3)
			if op%2 == 0 || len(live) == 0 {
				g, blocked := a.Reserve(clientsClass(c), float64(op%4)+1)
				if !blocked {
					live = append(live, g)
				}
			} else {
				a.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
			for cl := 0; cl < 3; cl++ {
				av := a.Available(clientsClass(cl))
				if av < -1e-9 || av > a.Capacity(clientsClass(cl))+1e-9 {
					return false
				}
			}
		}
		for _, g := range live {
			a.Release(g)
		}
		return math.Abs(a.TotalAvailable()-30) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReserveRelease(b *testing.B) {
	a := Must(PaperConfig(), rng.New(1))
	for i := 0; i < b.N; i++ {
		g, blocked := a.Reserve(0, 2)
		if !blocked {
			a.Release(g)
		}
	}
}
