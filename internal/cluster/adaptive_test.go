package cluster_test

import (
	"testing"

	"hybridqos/internal/adaptive"
	"hybridqos/internal/cluster"
	"hybridqos/internal/trace"
)

// The adaptive planner must be drivable from a cluster cell's event stream:
// under a mobility-driven load shift (a hot cell eight times over its
// neighbours, roamers spreading by least-loaded routing), feeding the hot
// cell's observed arrival ranks into an EpochController re-estimates the
// workload and re-optimises K away from a deliberately bad initial cutoff.
func TestAdaptiveReplanFromClusterTrace(t *testing.T) {
	basec := base(t)
	cfg := cluster.Config{
		Cells:          4,
		Base:           basec,
		CatalogOverlap: 1,
		Mobility:       cluster.Mobility{Rate: 0.05, AttachDelay: 1},
		Routing:        "least-loaded",
		HandoffEvery:   40,
		HotCell:        2,
		HotFactor:      8,
		CollectTrace:   true,
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	d := basec.Catalog.D()
	lengths := make([]float64, d)
	for r := 1; r <= d; r++ {
		lengths[r-1] = basec.Catalog.Length(r)
	}
	const initialCutoff = 2 // deliberately far from optimal for λ≈40
	ctl, err := adaptive.NewEpochController(adaptive.Planner{
		Classes: basec.Classes,
		Alpha:   basec.Alpha,
		Lengths: lengths,
		KMin:    0,
		KMax:    d,
	}, d, 100, initialCutoff)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the hot cell's arrivals (local and handed-off) through the
	// controller, exactly as a per-cell controller embedded in the cell
	// would see them.
	observed, replans := 0, 0
	for _, e := range res.Trace {
		if e.Cell != 2 {
			continue
		}
		if e.Kind != trace.KindArrival && e.Kind != trace.KindHandoff {
			continue
		}
		observed++
		if ctl.Observe(e.Item, e.T) {
			replans++
		}
	}
	if observed < 1000 {
		t.Fatalf("hot cell produced only %d arrivals; load shift too weak for estimation", observed)
	}
	if !ctl.Planned() || replans == 0 {
		t.Fatal("controller never re-planned despite epoch boundaries passing")
	}
	if ctl.Cutoff() == initialCutoff {
		t.Errorf("re-plan kept the deliberately bad cutoff %d", initialCutoff)
	}
	last := ctl.History[len(ctl.History)-1]
	if last.Lambda <= basec.Lambda {
		t.Errorf("estimated λ=%g does not reflect the hot cell's 8× load", last.Lambda)
	}
}
