package cluster

import (
	"fmt"
	"reflect"
)

// satState is one cell's saturation detector: a streak counter over barrier
// load samples. A cell is saturated once its pending load has been at or
// above the configured high-water mark for the configured number of
// consecutive barriers; the onset time is the barrier that completed the
// streak. Saturation latches — a later recovery clears the streak but not
// the flag, because the question the detector answers is "did this cell ever
// stop keeping up, and when".
type satState struct {
	saturated bool
	streak    int
	onsetT    float64
}

// observe folds one barrier load sample into the detector.
func (s *satState) observe(load int, t float64, threshold, needed int) {
	if load >= threshold {
		s.streak++
		if !s.saturated && s.streak >= needed {
			s.saturated = true
			s.onsetT = t
		}
	} else {
		s.streak = 0
	}
}

// onset returns the saturation onset time, -1 when the detector never fired.
func (s *satState) onset() float64 {
	if !s.saturated {
		return -1
	}
	return s.onsetT
}

// CellSnap is one cell's state in a cluster Snapshot: the barrier load
// sample, the saturation detector, and the monotone handoff/arrival
// counters. Every field is deterministic, so two runs of the same
// configuration produce identical snapshots — which is exactly what Resume
// verifies.
type CellSnap struct {
	Cell             int     `json:"cell"`
	Load             int     `json:"load"`
	Saturated        bool    `json:"saturated,omitempty"`
	SaturationStreak int     `json:"saturation_streak,omitempty"`
	SaturatedAt      float64 `json:"saturated_at"` // -1 when never saturated
	HandoffsIn       int64   `json:"handoffs_in"`
	HandoffsOut      int64   `json:"handoffs_out"`
	HandoffRefusals  int64   `json:"handoff_refusals"`
	Arrivals         int64   `json:"arrivals"`
}

// Snapshot is a cluster-level checkpoint taken at a handoff barrier.
type Snapshot struct {
	// Epoch is the number of completed epochs when the snapshot was taken.
	Epoch int `json:"epoch"`
	// T is the barrier time.
	T float64 `json:"t"`
	// Cells holds one entry per cell, cell 0 first.
	Cells []CellSnap `json:"cells"`
}

// takeSnapshot captures the cluster's barrier state at time t. Called inside
// the barrier, after saturation observation and mobility exchange, so loads
// reflect post-exchange backlogs.
//
//qos:barrier
func (c *Cluster) takeSnapshot(t float64) Snapshot {
	snap := Snapshot{Epoch: c.epoch, T: t}
	for _, cs := range c.cells {
		m := cs.srv.Peek()
		var arrivals, handoffsOut int64
		for _, cm := range m.PerClass {
			arrivals += cm.Arrivals
			handoffsOut += cm.HandoffsOut
		}
		snap.Cells = append(snap.Cells, CellSnap{
			Cell:             cs.id,
			Load:             cs.srv.PendingLoad(),
			Saturated:        cs.sat.saturated,
			SaturationStreak: cs.sat.streak,
			SaturatedAt:      cs.sat.onset(),
			HandoffsIn:       m.TotalHandoffs(),
			HandoffsOut:      handoffsOut,
			HandoffRefusals:  m.TotalHandoffRefusals(),
			Arrivals:         arrivals,
		})
	}
	return snap
}

// TakeSnapshot captures the cluster's current barrier state on demand (in
// addition to the periodic SnapshotEveryEpochs snapshots). Call it between
// Step calls, never concurrently with one.
func (c *Cluster) TakeSnapshot() Snapshot { return c.takeSnapshot(c.now) }

// Resume rebuilds a cluster from its configuration and replays it to the
// snapshot's epoch, verifying bit-for-bit that the replayed state matches
// the checkpoint before handing the live cluster back for continued
// stepping. The engine is deterministic, so re-simulation IS restoration —
// and the verification turns any divergence (a changed config, a
// nondeterministic component) into an immediate error instead of a silently
// wrong continuation.
func Resume(cfg Config, snap Snapshot) (*Cluster, error) {
	if snap.Epoch < 1 {
		return nil, fmt.Errorf("cluster: cannot resume from epoch %d", snap.Epoch)
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for c.epoch < snap.Epoch {
		done, err := c.Step()
		if err != nil {
			return nil, err
		}
		if done && c.epoch < snap.Epoch {
			return nil, fmt.Errorf("cluster: horizon reached at epoch %d before snapshot epoch %d", c.epoch, snap.Epoch)
		}
	}
	got := c.takeSnapshot(c.now)
	if !reflect.DeepEqual(got, snap) {
		return nil, fmt.Errorf("cluster: resume diverged at epoch %d: replayed %+v, snapshot %+v", snap.Epoch, got, snap)
	}
	return c, nil
}
