package cluster_test

import (
	"reflect"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/cluster"
	"hybridqos/internal/core"
	"hybridqos/internal/trace"
	"hybridqos/internal/workpool"
)

// base returns a small but non-trivial per-cell engine config.
func base(t *testing.T) core.Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		D: 100, Theta: 0.6, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Catalog: cat, Classes: cl, Lambda: 5, Cutoff: 40, Alpha: 0.5,
		Horizon: 400, WarmupFraction: 0.1, Seed: 11,
	}
}

// A 1-cell cluster with mobility off must reproduce a plain core run
// bit-for-bit — the refactor's single-cell compatibility contract — and the
// epoch segmentation itself must not perturb the trajectory.
func TestSingleCellMatchesCore(t *testing.T) {
	ref, err := core.New(base(t))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	for _, every := range []float64{0, 50} {
		cl, err := cluster.New(cluster.Config{Cells: 1, Base: base(t), HandoffEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerCell) != 1 {
			t.Fatalf("HandoffEvery=%g: %d cells", every, len(res.PerCell))
		}
		if !reflect.DeepEqual(res.PerCell[0].Metrics, want) {
			t.Errorf("HandoffEvery=%g: cell metrics diverged from core.Run", every)
		}
		if !reflect.DeepEqual(res.Aggregate.PerClass[0].Delay, want.PerClass[0].Delay) {
			t.Errorf("HandoffEvery=%g: aggregate delay diverged for class 0", every)
		}
	}
}

func run64(t *testing.T) *cluster.Result {
	t.Helper()
	cfg := cluster.Config{
		Cells:               64,
		Base:                base(t),
		CatalogOverlap:      0.5,
		Mobility:            cluster.Mobility{Rate: 0.02, AttachDelay: 2},
		Routing:             "least-loaded",
		HandoffEvery:        40,
		HotCell:             3,
		HotFactor:           2,
		SaturationLoad:      5,
		SaturationEpochs:    2,
		SnapshotEveryEpochs: 2,
		CollectTrace:        true,
	}
	cfg.Base.Horizon = 200
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The 64-cell federation must be bit-identical at any workpool worker
// count: the parallel phase shares nothing and every cross-cell effect is
// sequential at the barrier. This is the cluster's determinism contract.
func TestWorkerCountDeterminism(t *testing.T) {
	prev := workpool.SetWorkers(1)
	defer workpool.SetWorkers(prev)
	want := run64(t)
	var moved int64
	for _, cm := range want.Aggregate.PerClass {
		moved += cm.HandoffsOut
	}
	if moved == 0 {
		t.Fatal("mobility produced no roamers; the determinism check is vacuous")
	}
	if len(want.Trace) == 0 || len(want.Snapshots) == 0 {
		t.Fatal("expected a merged trace and periodic snapshots")
	}
	for _, workers := range []int{4, 0} {
		workpool.SetWorkers(workers)
		got := run64(t)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: result diverged from sequential run", workers)
		}
	}
}

// Mobility moves load; the books must still balance: every outbound roamer
// is either accepted or refused somewhere, and every trace stream carries
// its cell stamp.
func TestHandoffAccounting(t *testing.T) {
	res := run64(t)
	var out, in, refused int64
	for _, cm := range res.Aggregate.PerClass {
		out += cm.HandoffsOut
		in += cm.HandoffsIn
		refused += cm.HandoffRefusals
	}
	if out == 0 {
		t.Fatal("no roamers")
	}
	if in+refused != out {
		t.Errorf("handoffs out=%d but in=%d + refused=%d = %d", out, in, refused, in+refused)
	}
	cells := make(map[int]bool)
	for _, e := range res.Trace {
		cells[e.Cell] = true
	}
	if len(cells) != 64 {
		t.Errorf("trace covers %d cells, want 64", len(cells))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].T < res.Trace[i-1].T {
			t.Fatalf("merged trace out of order at %d", i)
		}
	}
}

// A hot cell driven well past the saturation high-water mark must be
// detected, with a recorded onset; lightly loaded cells must not be.
func TestSaturationDetection(t *testing.T) {
	cfg := cluster.Config{
		Cells:            4,
		Base:             base(t),
		CatalogOverlap:   1,
		HandoffEvery:     40,
		HotCell:          2,
		HotFactor:        8,
		SaturationLoad:   1000,
		SaturationEpochs: 2,
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	hot := res.PerCell[2]
	if !hot.Saturated {
		t.Fatalf("hot cell not saturated (final load %d)", hot.FinalLoad)
	}
	if hot.SaturatedAt <= 0 || hot.SaturatedAt > cfg.Base.Horizon {
		t.Errorf("saturation onset %g outside run", hot.SaturatedAt)
	}
	if res.SaturatedCells != 1 {
		t.Errorf("%d saturated cells, want 1", res.SaturatedCells)
	}
	for _, pc := range res.PerCell {
		if pc.Cell != 2 && pc.Saturated {
			t.Errorf("cell %d saturated without a hot spot", pc.Cell)
		}
		if pc.Cell != 2 && pc.SaturatedAt != -1 {
			t.Errorf("cell %d onset %g, want -1", pc.Cell, pc.SaturatedAt)
		}
	}
}

// Resume must replay a snapshotted run to the checkpoint, verify the state
// bit-for-bit, and continue to a final result identical to the
// uninterrupted run.
func TestSnapshotResume(t *testing.T) {
	cfg := cluster.Config{
		Cells:               8,
		Base:                base(t),
		CatalogOverlap:      0.7,
		Mobility:            cluster.Mobility{Rate: 0.05, AttachDelay: 1},
		Routing:             "nearest",
		HandoffEvery:        50,
		SnapshotEveryEpochs: 3,
		SaturationLoad:      5,
	}
	full, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRes.Snapshots) == 0 {
		t.Fatal("no snapshots recorded")
	}
	snap := wantRes.Snapshots[0]
	resumed, err := cluster.Resume(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Error("resumed run diverged from uninterrupted run")
	}

	// A corrupted checkpoint must be rejected, not silently continued.
	bad := snap
	bad.Cells = append([]cluster.CellSnap(nil), snap.Cells...)
	bad.Cells[0].Arrivals++
	if _, err := cluster.Resume(cfg, bad); err == nil {
		t.Error("Resume accepted a corrupted snapshot")
	}
}

// Catalog overlap: with full overlap no handoff is refused for a missing
// item; with zero overlap every roamer carries cell-local content and the
// only accepted handoffs are push-side (rank ≤ shared never holds).
func TestCatalogOverlap(t *testing.T) {
	mk := func(overlap float64) *cluster.Result {
		cfg := cluster.Config{
			Cells:          4,
			Base:           base(t),
			CatalogOverlap: overlap,
			Mobility:       cluster.Mobility{Rate: 0.1, AttachDelay: 1},
			HandoffEvery:   40,
			CollectTrace:   true,
		}
		cfg.Base.Horizon = 200
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := mk(1)
	for _, e := range full.Trace {
		if e.Reason == "no-item" {
			t.Fatal("full overlap refused a handoff for a missing item")
		}
	}
	none := mk(0)
	sawNoItem := false
	for _, e := range none.Trace {
		if e.Reason == "no-item" {
			sawNoItem = true
		}
	}
	if !sawNoItem {
		t.Error("zero overlap never refused a cell-local item")
	}
}

func TestValidate(t *testing.T) {
	good := func() cluster.Config {
		return cluster.Config{Cells: 2, Base: base(t), HandoffEvery: 40}
	}
	cases := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"zero cells", func(c *cluster.Config) { c.Cells = 0 }},
		{"overlap > 1", func(c *cluster.Config) { c.CatalogOverlap = 1.5 }},
		{"negative rate", func(c *cluster.Config) { c.Mobility.Rate = -1 }},
		{"negative delay", func(c *cluster.Config) { c.Mobility.AttachDelay = -1 }},
		{"mobility without epoch", func(c *cluster.Config) { c.Mobility.Rate = 1; c.HandoffEvery = 0 }},
		{"unknown routing", func(c *cluster.Config) { c.Routing = "teleport" }},
		{"hot cell out of range", func(c *cluster.Config) { c.HotCell = 7; c.HotFactor = 2 }},
		{"negative hot factor", func(c *cluster.Config) { c.HotFactor = -2 }},
		{"negative saturation load", func(c *cluster.Config) { c.SaturationLoad = -1 }},
		{"negative telemetry cadence", func(c *cluster.Config) { c.TelemetryEvery = -1 }},
		{"shared tracer", func(c *cluster.Config) { c.Base.Tracer = &discard{} }},
	}
	for _, tc := range cases {
		cfg := good()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		}
	}
	if err := good().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

type discard struct{}

func (discard) Event(trace.Event) {}
