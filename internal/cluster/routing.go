package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
)

// Router picks the destination cell for a roaming client, in the style of
// the internal/policy registries: cross-cell routing is a named, pluggable
// policy so experiments can compare strategies without touching the cluster
// engine.
//
// Determinism contract: Route is called sequentially at handoff barriers, in
// cell-index order, once per roamer; any randomness must come from the
// supplied per-cell stream. The returned cell must be a valid index other
// than src (a roaming client has, by definition, left its cell).
type Router interface {
	// Name identifies the routing policy in reports.
	Name() string
	// Route returns the destination cell for a roamer of the given class
	// leaving cell src. loads holds every cell's current pending load —
	// updated by the cluster as the barrier assigns roamers, so consecutive
	// decisions see the load they are creating. r is the origin cell's
	// mobility stream.
	Route(src int, class clients.Class, loads []int, r *rng.Source) int
}

// Factory builds a router for a cluster of cells cells and classes service
// classes.
type Factory func(cells, classes int) (Router, error)

// DefaultRouting is the routing policy used when no name is given.
const DefaultRouting = "nearest"

// UnknownRoutingError reports a lookup of an unregistered routing name.
type UnknownRoutingError struct {
	Name  string
	Known []string
}

func (e *UnknownRoutingError) Error() string {
	return fmt.Sprintf("cluster: unknown routing policy %q (known: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

// DuplicateRoutingError reports a registration under an already-taken name.
type DuplicateRoutingError struct{ Name string }

func (e *DuplicateRoutingError) Error() string {
	return fmt.Sprintf("cluster: duplicate routing policy registration %q", e.Name)
}

var (
	routingMu sync.RWMutex
	routings  = make(map[string]Factory)
)

// RegisterRouting adds a routing-policy factory under a new name.
// Registering an empty or already-taken name is a typed error.
func RegisterRouting(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("cluster: empty routing policy name")
	}
	routingMu.Lock()
	defer routingMu.Unlock()
	if _, ok := routings[name]; ok {
		return &DuplicateRoutingError{Name: name}
	}
	routings[name] = f
	return nil
}

// NewRouter builds the named routing policy. An empty name selects
// DefaultRouting.
func NewRouter(name string, cells, classes int) (Router, error) {
	if name == "" {
		name = DefaultRouting
	}
	routingMu.RLock()
	f, ok := routings[name]
	routingMu.RUnlock()
	if !ok {
		return nil, &UnknownRoutingError{Name: name, Known: RoutingNames()}
	}
	return f(cells, classes)
}

// KnownRouting reports whether a routing name is registered; the empty
// string names the default and is always known.
func KnownRouting(name string) bool {
	if name == "" {
		return true
	}
	routingMu.RLock()
	defer routingMu.RUnlock()
	_, ok := routings[name]
	return ok
}

// RoutingNames returns the sorted registered routing-policy names.
func RoutingNames() []string {
	routingMu.RLock()
	defer routingMu.RUnlock()
	names := make([]string, 0, len(routings))
	for name := range routings {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func mustRegisterRouting(name string, f Factory) {
	if err := RegisterRouting(name, f); err != nil {
		panic(fmt.Errorf("cluster: built-in routing registration: %w", err))
	}
}

// checkCells validates the cluster size a factory was handed.
func checkCells(cells int) error {
	if cells < 2 {
		return fmt.Errorf("cluster: routing needs at least 2 cells, got %d", cells)
	}
	return nil
}

// nearest routes to a ring neighbour: a roamer drifts to one of the two
// geographically adjacent cells, direction drawn from the origin cell's
// mobility stream (with 2 cells there is only one neighbour).
type nearest struct{ cells int }

func (nearest) Name() string { return "nearest" }

func (p nearest) Route(src int, _ clients.Class, _ []int, r *rng.Source) int {
	if p.cells == 2 {
		return 1 - src
	}
	if r.Intn(2) == 0 {
		return (src + 1) % p.cells
	}
	return (src + p.cells - 1) % p.cells
}

// leastLoaded routes to the cell with the smallest pending load, ties broken
// by lowest index. The load vector is live across a barrier, so a burst of
// roamers spreads instead of piling onto one momentarily-idle cell.
type leastLoaded struct{ cells int }

func (leastLoaded) Name() string { return "least-loaded" }

func (p leastLoaded) Route(src int, _ clients.Class, loads []int, _ *rng.Source) int {
	return argMinLoad(loads, src)
}

// classAffine partitions cells round-robin across service classes
// (cell i serves class i mod classes) and routes a roamer to the
// least-loaded cell of its own class's partition, falling back to plain
// least-loaded when the partition offers no destination.
type classAffine struct{ cells, classes int }

func (classAffine) Name() string { return "class-affine" }

func (p classAffine) Route(src int, class clients.Class, loads []int, _ *rng.Source) int {
	best := -1
	for i := 0; i < p.cells; i++ {
		if i == src || i%p.classes != int(class) {
			continue
		}
		if best == -1 || loads[i] < loads[best] {
			best = i
		}
	}
	if best == -1 {
		return argMinLoad(loads, src)
	}
	return best
}

// argMinLoad returns the index of the least-loaded cell other than src,
// lowest index winning ties.
func argMinLoad(loads []int, src int) int {
	best := -1
	for i, l := range loads {
		if i == src {
			continue
		}
		if best == -1 || l < loads[best] {
			best = i
		}
	}
	return best
}

func init() {
	mustRegisterRouting("nearest", func(cells, _ int) (Router, error) {
		if err := checkCells(cells); err != nil {
			return nil, err
		}
		return nearest{cells: cells}, nil
	})
	mustRegisterRouting("least-loaded", func(cells, _ int) (Router, error) {
		if err := checkCells(cells); err != nil {
			return nil, err
		}
		return leastLoaded{cells: cells}, nil
	})
	mustRegisterRouting("class-affine", func(cells, classes int) (Router, error) {
		if err := checkCells(cells); err != nil {
			return nil, err
		}
		if classes < 1 {
			return nil, fmt.Errorf("cluster: class-affine routing needs at least 1 class, got %d", classes)
		}
		return classAffine{cells: cells, classes: classes}, nil
	})
}
