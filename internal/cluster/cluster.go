// Package cluster federates N independent broadcast cells — each a full
// core.Server with its own catalog, policies, clients and telemetry — into
// one multi-cell simulation with client mobility, cross-cell routing and
// cluster-level saturation detection. This is the path from one cell to
// "millions of users": population scales per-cell × cell count.
//
// # Determinism
//
// The cluster is bulk-synchronous. The horizon is divided into handoff
// epochs of length HandoffEvery; within an epoch every cell advances
// independently (driven as internal/workpool jobs, so a 64-cell federation
// uses every core), and all cross-cell interaction happens at the epoch
// barrier, sequentially, in cell-index order:
//
//  1. sample every cell's pending load (the routing and saturation signal);
//  2. per cell, draw which pending requests roam (one Bernoulli(p) draw per
//     request from that cell's own mobility stream, p = 1−exp(−Rate·Δ));
//  3. route each roamer (registered policy: nearest, least-loaded,
//     class-affine) and schedule its re-attachment at barrier+AttachDelay
//     on the destination cell's event heap.
//
// Injections scheduled at a barrier fire inside the destination's next
// parallel advance and touch only that cell's state, so the parallel phase
// shares nothing and the barrier phase is single-threaded: results are
// bit-identical at any worker count, matching the repository's determinism
// contract.
//
// # Catalog overlap
//
// Ranks 1..round(CatalogOverlap·D) are global items replicated in every
// cell (same length everywhere); higher ranks are cell-local content with
// per-cell lengths. A roamer pulling a cell-local item cannot be served
// elsewhere — the destination refuses the handoff ("no-item").
package cluster

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
	"hybridqos/internal/core"
	"hybridqos/internal/rng"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
	"hybridqos/internal/workpool"
)

// Mobility parameterises the client-mobility model.
type Mobility struct {
	// Rate is the per-request roam intensity: each pending request roams
	// within a handoff epoch of length Δ with probability 1−exp(−Rate·Δ).
	// 0 disables mobility.
	Rate float64
	// AttachDelay is the transit time between detaching from the origin
	// cell and re-attaching at the destination. The request's deadline
	// budget keeps running in transit.
	AttachDelay float64
}

// Config parameterises a cluster run.
type Config struct {
	// Cells is the number of broadcast cells (≥ 1).
	Cells int
	// Base is the per-cell engine configuration template. Cell i runs a
	// copy with its own derived seed, its own catalog (see CatalogOverlap)
	// and its own tracer/telemetry. Stateful injected components (Tracer,
	// Telemetry, Arrivals, Items, Loss, Uplink, PullPolicy) must be nil —
	// one instance cannot be shared across parallel cells; use PerCell to
	// install per-cell instances.
	Base core.Config
	// CatalogOverlap is the fraction of catalog ranks replicated in every
	// cell, in [0,1]. Ranks 1..round(Overlap·D) are global; the rest are
	// cell-local content whose lengths are redrawn per cell and whose
	// pending pulls cannot follow a roaming client. With a single cell the
	// whole catalog is effectively global.
	CatalogOverlap float64
	// Mobility is the client-mobility model; the zero value disables it.
	Mobility Mobility
	// Routing names the cross-cell routing policy ("nearest",
	// "least-loaded", "class-affine"); empty selects DefaultRouting.
	Routing string
	// HandoffEvery is the epoch length Δ between cross-cell barriers, in
	// broadcast units. 0 runs the whole horizon as one epoch (valid only
	// with mobility disabled).
	HandoffEvery float64
	// HotCell, with HotFactor > 1, multiplies one cell's arrival rate —
	// the asymmetric-load scenario saturation detection and mobility-driven
	// re-optimisation are about. HotFactor 0 disables the hot spot.
	HotCell   int
	HotFactor float64
	// SaturationLoad is the pending-load high-water mark of the saturation
	// detector: a cell whose load at a barrier is ≥ SaturationLoad for
	// SaturationEpochs consecutive barriers is marked saturated (onset time
	// recorded). 0 disables detection.
	SaturationLoad int
	// SaturationEpochs is the consecutive-barrier count; 0 means 1.
	SaturationEpochs int
	// SnapshotEveryEpochs records a cluster Snapshot every that many epochs
	// (at the barrier). 0 disables periodic snapshots.
	SnapshotEveryEpochs int
	// CollectTrace buffers every cell's event stream (cell-stamped) and
	// exposes the deterministic time-merged stream on the Result.
	CollectTrace bool
	// TelemetryEvery, when positive, attaches a per-cell telemetry
	// collector with that snapshot cadence (snapshots are labelled with the
	// cell ID and embedded in the cell's trace stream when CollectTrace is
	// set).
	TelemetryEvery float64
	// Exemplars, with TelemetryEvery > 0 and Base.Spans set, keeps up to
	// that many exemplar span IDs per (class, delay bucket) in each cell's
	// collector, sampled with a deterministic per-cell reservoir. 0
	// disables exemplars.
	Exemplars int
	// PerCell, when non-nil, is called with each cell's derived core config
	// before the cell is built — the hook for installing per-cell stateful
	// components (loss models, uplink channels, workloads).
	PerCell func(cell int, cfg *core.Config) error
}

// Validate reports whether the cluster configuration is usable. Per-cell
// engine configs are additionally validated by core.New.
func (c Config) Validate() error {
	if c.Cells < 1 {
		return fmt.Errorf("cluster: cell count %d < 1", c.Cells)
	}
	if c.Base.Tracer != nil || c.Base.Telemetry != nil {
		return fmt.Errorf("cluster: Base.Tracer/Telemetry must be nil (the cluster owns per-cell tracing; see CollectTrace and TelemetryEvery)")
	}
	if c.Base.Arrivals != nil || c.Base.Items != nil || c.Base.Loss != nil || c.Base.Uplink != nil || c.Base.PullPolicy != nil {
		return fmt.Errorf("cluster: stateful injected components in Base must be nil — install per-cell instances via PerCell")
	}
	if c.CatalogOverlap < 0 || c.CatalogOverlap > 1 || math.IsNaN(c.CatalogOverlap) {
		return fmt.Errorf("cluster: catalog overlap %g outside [0,1]", c.CatalogOverlap)
	}
	if c.Mobility.Rate < 0 || math.IsNaN(c.Mobility.Rate) || math.IsInf(c.Mobility.Rate, 0) {
		return fmt.Errorf("cluster: invalid mobility rate %g", c.Mobility.Rate)
	}
	if c.Mobility.AttachDelay < 0 || math.IsNaN(c.Mobility.AttachDelay) || math.IsInf(c.Mobility.AttachDelay, 0) {
		return fmt.Errorf("cluster: invalid attach delay %g", c.Mobility.AttachDelay)
	}
	if c.HandoffEvery < 0 || math.IsNaN(c.HandoffEvery) || math.IsInf(c.HandoffEvery, 0) {
		return fmt.Errorf("cluster: invalid handoff epoch %g", c.HandoffEvery)
	}
	if c.Mobility.Rate > 0 && c.Cells > 1 && c.HandoffEvery == 0 {
		return fmt.Errorf("cluster: mobility needs a positive HandoffEvery epoch")
	}
	if !KnownRouting(c.Routing) {
		return &UnknownRoutingError{Name: c.Routing, Known: RoutingNames()}
	}
	if c.HotFactor != 0 {
		if c.HotFactor <= 0 || math.IsNaN(c.HotFactor) || math.IsInf(c.HotFactor, 0) {
			return fmt.Errorf("cluster: invalid hot-cell factor %g", c.HotFactor)
		}
		if c.HotCell < 0 || c.HotCell >= c.Cells {
			return fmt.Errorf("cluster: hot cell %d out of [0,%d)", c.HotCell, c.Cells)
		}
	}
	if c.SaturationLoad < 0 {
		return fmt.Errorf("cluster: negative saturation load %d", c.SaturationLoad)
	}
	if c.SaturationEpochs < 0 {
		return fmt.Errorf("cluster: negative saturation epoch count %d", c.SaturationEpochs)
	}
	if c.SnapshotEveryEpochs < 0 {
		return fmt.Errorf("cluster: negative snapshot cadence %d", c.SnapshotEveryEpochs)
	}
	if c.TelemetryEvery < 0 || math.IsNaN(c.TelemetryEvery) || math.IsInf(c.TelemetryEvery, 0) {
		return fmt.Errorf("cluster: invalid telemetry cadence %g", c.TelemetryEvery)
	}
	if c.Exemplars < 0 {
		return fmt.Errorf("cluster: negative exemplar count %d", c.Exemplars)
	}
	return nil
}

// cellState is one cell plus its cluster-side bookkeeping. During the
// parallel phase a cellState is touched only by its own workpool job; the
// barrier phase owns them all, single-threaded.
//
//qos:sharded
type cellState struct {
	id     int
	srv    *core.Server
	buf    *trace.Buffer
	mobRng *rng.Source
	sat    satState
}

// Cluster is a running multi-cell federation. Build with New, drive with
// Step (or Run, which steps to the horizon and aggregates).
type Cluster struct {
	cfg      Config
	cells    []*cellState
	router   Router
	shared   int // catalog ranks 1..shared are global
	delta    float64
	roamProb float64
	epoch    int
	now      float64
	started  bool
	done     bool
	snaps    []Snapshot
}

// New builds a cluster: N cells with derived seeds and overlapped catalogs,
// a routing policy, and per-cell mobility streams. Construction is
// single-threaded, so it counts as a barrier phase.
//
//qos:barrier
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Base.Catalog == nil {
		return nil, fmt.Errorf("cluster: nil base catalog")
	}
	if cfg.Base.Classes == nil {
		return nil, fmt.Errorf("cluster: nil base classification")
	}
	c := &Cluster{cfg: cfg, shared: sharedRanks(cfg), delta: cfg.HandoffEvery}
	if c.delta <= 0 || c.delta > cfg.Base.Horizon {
		c.delta = cfg.Base.Horizon
	}
	if cfg.Mobility.Rate > 0 && cfg.Cells > 1 {
		c.roamProb = -math.Expm1(-cfg.Mobility.Rate * c.delta)
		r, err := NewRouter(cfg.Routing, cfg.Cells, cfg.Base.Classes.NumClasses())
		if err != nil {
			return nil, err
		}
		c.router = r
	}
	mobRoot := rng.New(cfg.Base.Seed).Split("cluster-mobility")
	for i := 0; i < cfg.Cells; i++ {
		cc := cfg.Base
		if i > 0 {
			// Cell 0 keeps the base seed so a 1-cell, mobility-off cluster
			// is bit-identical to a plain core.Run of the base config.
			cc.Seed = cfg.Base.Seed + uint64(i)*0x9E3779B97F4A7C15
		}
		cat, err := cellCatalog(cfg, c.shared, i)
		if err != nil {
			return nil, err
		}
		cc.Catalog = cat
		if cfg.HotFactor > 0 && i == cfg.HotCell {
			cc.Lambda *= cfg.HotFactor
		}
		if cc.Spans != nil {
			// Namespace span IDs per cell (cell index in the high bits) so
			// IDs stay globally unique after MergeByTime and cross-cell
			// parent links resolve unambiguously.
			sc := *cc.Spans
			sc.IDBase = int64(i+1) << 40
			cc.Spans = &sc
		}
		cs := &cellState{id: i, mobRng: mobRoot.Split(fmt.Sprintf("cell-%d", i))}
		if cfg.CollectTrace {
			cs.buf = &trace.Buffer{}
			cc.Tracer = trace.Tag{Cell: i, Next: cs.buf}
		}
		if cfg.TelemetryEvery > 0 {
			opts := telemetry.Options{SnapshotEvery: cfg.TelemetryEvery, Cell: i}
			if cfg.Exemplars > 0 && cc.Spans != nil {
				opts.Exemplars = cfg.Exemplars
				opts.ExemplarRNG = rng.New(cc.Seed).Split("exemplars")
			}
			tele, err := telemetry.New(opts)
			if err != nil {
				return nil, err
			}
			cc.Telemetry = tele
		}
		if cfg.PerCell != nil {
			if err := cfg.PerCell(i, &cc); err != nil {
				return nil, fmt.Errorf("cluster: per-cell hook for cell %d: %w", i, err)
			}
		}
		srv, err := core.New(cc)
		if err != nil {
			return nil, fmt.Errorf("cluster: cell %d: %w", i, err)
		}
		cs.srv = srv
		c.cells = append(c.cells, cs)
	}
	return c, nil
}

// sharedRanks returns the size of the global catalog prefix.
func sharedRanks(cfg Config) int {
	d := cfg.Base.Catalog.D()
	if cfg.Cells == 1 {
		return d
	}
	return int(math.Round(cfg.CatalogOverlap * float64(d)))
}

// cellCatalog derives cell i's catalog: the global rank prefix keeps the
// base lengths, cell-local ranks resample their length from the base
// catalog's empirical length distribution using a per-cell stream.
func cellCatalog(cfg Config, shared, cell int) (*catalog.Catalog, error) {
	base := cfg.Base.Catalog
	d := base.D()
	if shared >= d {
		return base, nil
	}
	lengths := make([]float64, d)
	for r := 1; r <= d; r++ {
		lengths[r-1] = base.Length(r)
	}
	lr := rng.New(cfg.Base.Seed).Split(fmt.Sprintf("cluster-catalog-%d", cell))
	for r := shared; r < d; r++ {
		lengths[r] = base.Length(1 + lr.Intn(d))
	}
	return catalog.FromLengths(lengths, base.Theta())
}

// SharedRanks returns the size of the global catalog prefix (ranks
// 1..SharedRanks are replicated in every cell).
func (c *Cluster) SharedRanks() int { return c.shared }

// Epoch returns the number of completed handoff epochs.
func (c *Cluster) Epoch() int { return c.epoch }

// Now returns the cluster's current barrier time.
func (c *Cluster) Now() float64 { return c.now }

// Step advances every cell one handoff epoch in parallel (workpool jobs),
// then runs the cross-cell barrier: load sampling, saturation detection,
// mobility extraction, routing and re-attachment scheduling. It reports
// whether the horizon has been reached. After done, call Result.
//
//qos:barrier
func (c *Cluster) Step() (bool, error) {
	if c.done {
		return true, nil
	}
	if !c.started {
		for _, cs := range c.cells {
			cs.srv.Start()
		}
		c.started = true
	}
	c.epoch++
	t := float64(c.epoch) * c.delta
	if t > c.cfg.Base.Horizon {
		t = c.cfg.Base.Horizon
	}
	if err := workpool.Run(len(c.cells), func(i int) error {
		//lint:allow barriersafe parallel phase: job i advances only cell i; no cross-cell state is touched until the barrier
		c.cells[i].srv.AdvanceTo(t)
		return nil
	}); err != nil {
		return false, err
	}
	c.now = t
	c.barrier(t)
	if t >= c.cfg.Base.Horizon {
		c.done = true
	}
	return c.done, nil
}

// barrier runs the sequential cross-cell phase at barrier time t. Every
// cell's clock is exactly at t; nothing here advances simulated time.
//
//qos:barrier
func (c *Cluster) barrier(t float64) {
	loads := make([]int, len(c.cells))
	for i, cs := range c.cells {
		loads[i] = cs.srv.PendingLoad()
	}
	if c.cfg.SaturationLoad > 0 {
		for i, cs := range c.cells {
			cs.sat.observe(loads[i], t, c.cfg.SaturationLoad, max(1, c.cfg.SaturationEpochs))
		}
	}
	if c.roamProb > 0 && t < c.cfg.Base.Horizon {
		c.exchange(t, loads)
	}
	if c.cfg.SnapshotEveryEpochs > 0 && c.epoch%c.cfg.SnapshotEveryEpochs == 0 {
		c.snaps = append(c.snaps, c.takeSnapshot(t))
	}
}

// exchange extracts, routes and re-schedules this barrier's roamers,
// sequentially in cell-index order.
//
//qos:barrier
func (c *Cluster) exchange(t float64, loads []int) {
	horizon := c.cfg.Base.Horizon
	for i, cs := range c.cells {
		p := c.roamProb
		r := cs.mobRng
		roamers := cs.srv.ExtractRoamers(func() bool { return r.Float64() < p })
		loads[i] -= len(roamers)
		for _, rm := range roamers {
			dst := c.router.Route(i, rm.Class, loads, r)
			if dst == i || dst < 0 || dst >= len(c.cells) {
				panic(fmt.Sprintf("cluster: routing policy %q returned cell %d for a roamer leaving cell %d of %d", c.router.Name(), dst, i, len(c.cells)))
			}
			dc := c.cells[dst]
			if rm.Item > c.shared {
				// Cell-local content does not exist at the destination.
				dc.srv.RefuseHandoff(rm.Item, rm.Class, "no-item", rm.Arrival, rm.Span)
				continue
			}
			attach := t + c.cfg.Mobility.AttachDelay
			if attach > horizon {
				dc.srv.RefuseHandoff(rm.Item, rm.Class, "horizon", rm.Arrival, rm.Span)
				continue
			}
			loads[dst]++
			dc.srv.ScheduleInject(attach, rm.Item, rm.Class, rm.Arrival, rm.Attempts, rm.Span, nil)
		}
	}
}

// Run steps the cluster to the horizon and returns the aggregated result.
func (c *Cluster) Run() (*Result, error) {
	for {
		done, err := c.Step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return c.Result(), nil
}

// CellResult is one cell's outcome.
type CellResult struct {
	// Cell is the cell index.
	Cell int
	// Metrics is the cell's full engine metrics.
	Metrics *core.Metrics
	// Saturated reports whether the saturation detector fired, and
	// SaturatedAt the barrier time of onset (-1 when it never fired).
	Saturated   bool
	SaturatedAt float64
	// FinalLoad is the cell's pending load at the final barrier.
	FinalLoad int
}

// Result is a finished cluster run.
type Result struct {
	// PerCell holds each cell's outcome, cell 0 first.
	PerCell []CellResult
	// Aggregate pools the per-class metrics across cells: counters summed,
	// delay statistics and histograms merged. Queue and bandwidth trackers
	// are per-cell quantities and stay in PerCell only.
	Aggregate *core.Metrics
	// SaturatedCells counts cells whose saturation detector fired.
	SaturatedCells int
	// Snapshots are the periodic barrier snapshots (SnapshotEveryEpochs).
	Snapshots []Snapshot
	// Trace is the deterministic time-merged, cell-stamped event stream
	// (CollectTrace); nil otherwise.
	Trace []trace.Event
}

// Result finalises every cell and aggregates the run. Call once, after Step
// reported done — the parallel phase is over, so this is barrier territory.
//
//qos:barrier
func (c *Cluster) Result() *Result {
	res := &Result{}
	var metrics []*core.Metrics
	var streams [][]trace.Event
	for _, cs := range c.cells {
		m := cs.srv.Finish()
		metrics = append(metrics, m)
		res.PerCell = append(res.PerCell, CellResult{
			Cell:        cs.id,
			Metrics:     m,
			Saturated:   cs.sat.saturated,
			SaturatedAt: cs.sat.onset(),
			FinalLoad:   cs.srv.PendingLoad(),
		})
		if cs.sat.saturated {
			res.SaturatedCells++
		}
		if cs.buf != nil {
			streams = append(streams, cs.buf.Events)
		}
	}
	res.Aggregate = mergeMetrics(c.cfg.Base, metrics)
	res.Snapshots = c.snaps
	if len(streams) > 0 {
		res.Trace = trace.MergeByTime(streams...)
	}
	return res
}

// mergeMetrics pools per-class metrics across cells.
func mergeMetrics(base core.Config, cells []*core.Metrics) *core.Metrics {
	if len(cells) == 0 {
		return nil
	}
	agg := &core.Metrics{Horizon: cells[0].Horizon, Cutoff: cells[0].Cutoff}
	for ci := range cells[0].PerClass {
		cm := &core.ClassMetrics{
			Class:  cells[0].PerClass[ci].Class,
			Weight: cells[0].PerClass[ci].Weight,
		}
		if base.DelayHistBound > 0 {
			cm.DelayHist.SetBound(base.DelayHistBound)
		}
		for _, m := range cells {
			src := m.PerClass[ci]
			cm.Arrivals += src.Arrivals
			cm.Served += src.Served
			cm.Dropped += src.Dropped
			cm.Expired += src.Expired
			cm.UplinkLost += src.UplinkLost
			cm.CacheHits += src.CacheHits
			cm.Retries += src.Retries
			cm.Failed += src.Failed
			cm.Shed += src.Shed
			cm.HandoffsIn += src.HandoffsIn
			cm.HandoffsOut += src.HandoffsOut
			cm.HandoffRefusals += src.HandoffRefusals
			cm.Delay.Merge(&src.Delay)
			cm.PushDelay.Merge(&src.PushDelay)
			cm.PullDelay.Merge(&src.PullDelay)
			cm.DelayHist.Merge(&src.DelayHist)
		}
		agg.PerClass = append(agg.PerClass, cm)
	}
	for _, m := range cells {
		agg.PushBroadcasts += m.PushBroadcasts
		agg.PullTransmissions += m.PullTransmissions
		agg.BlockedTransmissions += m.BlockedTransmissions
		agg.CorruptedPushes += m.CorruptedPushes
		agg.CorruptedPulls += m.CorruptedPulls
	}
	return agg
}

// max is a small int helper (pre-generics-stdlib spelling kept local).
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
