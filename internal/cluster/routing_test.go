package cluster_test

import (
	"errors"
	"sort"
	"testing"

	"hybridqos/internal/cluster"
	"hybridqos/internal/rng"
)

func router(t *testing.T, name string, cells, classes int) cluster.Router {
	t.Helper()
	r, err := cluster.NewRouter(name, cells, classes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoutingRegistry(t *testing.T) {
	names := cluster.RoutingNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("RoutingNames not sorted: %v", names)
	}
	for _, want := range []string{"nearest", "least-loaded", "class-affine"} {
		if !cluster.KnownRouting(want) {
			t.Errorf("builtin %q not registered", want)
		}
	}
	if !cluster.KnownRouting("") {
		t.Error("empty name (default) should be known")
	}
	if cluster.KnownRouting("teleport") {
		t.Error("unregistered name reported known")
	}
	var unknown *cluster.UnknownRoutingError
	if _, err := cluster.NewRouter("teleport", 4, 3); !errors.As(err, &unknown) {
		t.Errorf("NewRouter(teleport) = %v, want UnknownRoutingError", err)
	}
	var dup *cluster.DuplicateRoutingError
	if err := cluster.RegisterRouting("nearest", nil); !errors.As(err, &dup) {
		t.Errorf("re-registering nearest = %v, want DuplicateRoutingError", err)
	}
	if err := cluster.RegisterRouting("", nil); err == nil {
		t.Error("empty-name registration accepted")
	}
	if r := router(t, "", 4, 3); r.Name() != cluster.DefaultRouting {
		t.Errorf("default router is %q, want %q", r.Name(), cluster.DefaultRouting)
	}
	for _, name := range []string{"nearest", "least-loaded", "class-affine"} {
		if _, err := cluster.NewRouter(name, 1, 3); err == nil {
			t.Errorf("%s accepted a 1-cell cluster", name)
		}
	}
}

func TestNearestRouting(t *testing.T) {
	r := router(t, "nearest", 2, 3)
	src := rng.New(7)
	for i := 0; i < 10; i++ {
		if dst := r.Route(0, 0, []int{0, 0}, src); dst != 1 {
			t.Fatalf("2-cell nearest from 0 → %d", dst)
		}
	}
	r = router(t, "nearest", 5, 3)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		dst := r.Route(2, 0, make([]int, 5), src)
		if dst != 1 && dst != 3 {
			t.Fatalf("nearest from 2 of 5 → %d, want a ring neighbour", dst)
		}
		seen[dst] = true
	}
	if !seen[1] || !seen[3] {
		t.Errorf("nearest never used both neighbours: %v", seen)
	}
	// Wrap-around at the ring edges.
	for i := 0; i < 100; i++ {
		if dst := r.Route(0, 0, make([]int, 5), src); dst != 1 && dst != 4 {
			t.Fatalf("nearest from 0 of 5 → %d", dst)
		}
	}
}

func TestLeastLoadedRouting(t *testing.T) {
	r := router(t, "least-loaded", 4, 3)
	src := rng.New(7)
	if dst := r.Route(0, 0, []int{0, 5, 2, 9}, src); dst != 2 {
		t.Errorf("least-loaded → %d, want 2", dst)
	}
	// The origin cell is never a destination, even when least loaded.
	if dst := r.Route(2, 0, []int{5, 5, 0, 9}, src); dst == 2 {
		t.Error("least-loaded routed back to the origin")
	}
	// Ties break to the lowest index.
	if dst := r.Route(3, 0, []int{4, 4, 4, 4}, src); dst != 0 {
		t.Errorf("tie → %d, want 0", dst)
	}
}

func TestClassAffineRouting(t *testing.T) {
	// 6 cells, 3 classes: class c owns cells {c, c+3}.
	r := router(t, "class-affine", 6, 3)
	src := rng.New(7)
	loads := []int{9, 9, 9, 1, 2, 3}
	if dst := r.Route(0, 0, loads, src); dst != 3 {
		t.Errorf("class 0 → %d, want 3 (least-loaded cell of class 0, excluding origin)", dst)
	}
	if dst := r.Route(1, 1, loads, src); dst != 4 {
		t.Errorf("class 1 → %d, want 4", dst)
	}
	// Partition empty after excluding the origin → least-loaded fallback.
	r2 := router(t, "class-affine", 3, 3)
	if dst := r2.Route(1, 1, []int{7, 0, 3}, src); dst != 2 {
		t.Errorf("fallback → %d, want 2", dst)
	}
}
