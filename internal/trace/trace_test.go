package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNopAcceptsEverything(t *testing.T) {
	var n Nop
	n.Event(Event{T: 1, Kind: KindArrival})
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Event(Event{Kind: KindArrival})
	c.Event(Event{Kind: KindArrival})
	c.Event(Event{Kind: KindServed})
	if c.Count(KindArrival) != 2 || c.Count(KindServed) != 1 {
		t.Fatalf("counts: %d, %d", c.Count(KindArrival), c.Count(KindServed))
	}
	if c.Count(KindBlocked) != 0 {
		t.Fatal("absent kind nonzero")
	}
	if c.Total() != 3 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	events := []Event{
		{T: 1.5, Kind: KindArrival, Item: 42, Class: 1},
		{T: 2.5, Kind: KindServed, Class: 0, Arrival: 1.5, Push: true},
		{T: 3, Kind: KindBlocked, Item: 7, Class: 2, Requests: 4},
	}
	for _, e := range events {
		j.Event(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != 3 {
		t.Fatalf("Events = %d", j.Events())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d events decoded", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(failWriter{})
	for i := 0; i < 10000; i++ { // enough to overflow the buffer
		j.Event(Event{T: float64(i), Kind: KindArrival})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "write failed" }

func TestReadMalformed(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"t":1}{bad json`)); err == nil {
		t.Fatal("malformed stream accepted")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b}
	m.Event(Event{Kind: KindArrival})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestReplay(t *testing.T) {
	events := []Event{
		{T: 10, Kind: KindServed, Class: 0, Arrival: 4},  // delay 6
		{T: 20, Kind: KindServed, Class: 0, Arrival: 10}, // delay 10
		{T: 30, Kind: KindServed, Class: 2, Arrival: 25}, // delay 5
		{T: 99, Kind: KindArrival, Class: 1},             // ignored
	}
	stats, err := Replay(events, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Served != 2 || stats[0].MeanDelay() != 8 {
		t.Fatalf("class 0: %+v", stats[0])
	}
	if stats[1].Served != 0 || stats[1].MeanDelay() != 0 {
		t.Fatalf("class 1: %+v", stats[1])
	}
	if stats[2].Served != 1 || stats[2].MeanDelay() != 5 {
		t.Fatalf("class 2: %+v", stats[2])
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Replay(nil, 0); err == nil {
		t.Fatal("numClasses 0 accepted")
	}
	if _, err := Replay([]Event{{Kind: KindServed, Class: 5}}, 3); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}
