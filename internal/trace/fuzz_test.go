package trace

import (
	"bytes"
	"testing"
)

// FuzzRead: arbitrary byte streams must never panic the trace reader; valid
// traces round-trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Event(Event{T: 1, Kind: KindArrival, Item: 3, Class: 1})
	j.Event(Event{T: 2, Kind: KindServed, Class: 0, Arrival: 1})
	_ = j.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"t":1,"kind":"arrival"`)) // truncated
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to error, not panic
		}
		// Whatever decoded must re-encode and re-decode to the same events.
		var out bytes.Buffer
		j := NewJSONL(&out)
		for _, e := range events {
			j.Event(e)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("event %d changed: %+v vs %+v", i, again[i], events[i])
			}
		}
	})
}
