// Package trace provides structured event tracing for the simulator: every
// request arrival, transmission and blocking decision can be streamed to a
// JSON-lines writer for offline analysis, replayed to recompute metrics
// independently of the live collectors (a strong cross-check used in tests),
// or counted cheaply.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"hybridqos/internal/clients"
	"hybridqos/internal/telemetry"
)

// Kind enumerates traced event types.
type Kind string

// Trace event kinds.
const (
	KindArrival      Kind = "arrival"       // a request reached the server
	KindPushStart    Kind = "push-start"    // flat broadcast transmission began
	KindPushComplete Kind = "push-complete" // broadcast finished; waiters satisfied
	KindPullStart    Kind = "pull-start"    // pull transmission began
	KindPullComplete Kind = "pull-complete" // pull finished; pending requests satisfied
	KindBlocked      Kind = "blocked"       // pull entry dropped for bandwidth
	KindServed       Kind = "served"        // one request satisfied
	KindCorrupt      Kind = "corrupt"       // transmission corrupted on the lossy downlink
	KindRetry        Kind = "retry"         // client scheduled a re-request after corruption
	KindShed         Kind = "shed"          // request refused by the overload admission controller
	KindSnapshot     Kind = "snapshot"      // periodic telemetry snapshot (read-only; carries Snap)

	// Multi-cell kinds (internal/cluster): cross-cell client mobility.
	KindHandoff        Kind = "handoff"         // roaming request re-attached at this cell
	KindHandoffRefused Kind = "handoff-refused" // roaming request turned away at this cell (see Reason)

	// Span provenance kinds (internal/span): emitted only for head-sampled
	// requests when span tracing is enabled, so spans-off streams stay
	// byte-identical. They are additive provenance — Apply treats them as
	// metric no-ops (exemplars aside) because the primary kinds above
	// already carry every metric increment.
	KindSpanStart   Kind = "span-start"   // sampled request arrived; Reason is the admission verdict
	KindSpanEnqueue Kind = "span-enqueue" // sampled request entered the pull queue; Score is the entry's post-add score
	KindDecision    Kind = "decision"     // pull extraction decision: winning and runner-up scores
	KindSpanLoss    Kind = "span-loss"    // sampled request's transmission corrupted; Start is the transmission start
	KindSpanRetry   Kind = "span-retry"   // sampled request re-submitted after loss backoff
	KindSpanHandoff Kind = "span-handoff" // sampled request roamed out of this cell (Cell tags carry origin/destination)
	KindSpanAttach  Kind = "span-attach"  // sampled request re-attached after transit; Reason is the inject verdict
	KindSpanEnd     Kind = "span-end"     // sampled request reached a terminal; Reason is the outcome taxonomy
)

// Admission verdicts carried in KindSpanStart/KindSpanAttach Reason fields.
const (
	VerdictPull  = "pull"  // enqueued on the pull queue
	VerdictPush  = "push"  // waiting for the item's scheduled broadcast
	VerdictCache = "cache" // satisfied instantly from the client cache
)

// Terminal outcomes carried in the KindSpanEnd Reason field. Handoff
// refusals reuse the cluster taxonomy prefixed with "refused-":
// refused-expired, refused-shed, refused-horizon, refused-no-item.
const (
	EndServed     = "served"      // delivered; Start is the service start, Arrival the request arrival
	EndExpired    = "expired"     // TTL/deadline passed before delivery
	EndBlocked    = "blocked"     // pull entry dropped for bandwidth
	EndFailed     = "failed"      // corrupted delivery and the retry policy gave up
	EndShed       = "shed"        // refused by the overload admission controller
	EndUplinkLost = "uplink-lost" // request lost on the uplink before reaching the server
	EndRejected   = "rejected"    // refused by serving-mode admission control
	EndDraining   = "draining"    // refused because the daemon is draining
)

// Event is one trace record. Fields are compact so a run can emit millions
// of them; the only pointer is Snap, set solely on the (rare) periodic
// KindSnapshot events.
type Event struct {
	// T is the simulated time.
	T float64 `json:"t"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Item is the catalog rank involved (0 when not applicable).
	Item int `json:"item,omitempty"`
	// Class is the service class involved (−1 when not applicable).
	Class clients.Class `json:"class"`
	// Arrival is the request's arrival time (KindServed only).
	Arrival float64 `json:"arrival,omitempty"`
	// Requests is the pending-request count involved (transmissions/blocks).
	Requests int `json:"requests,omitempty"`
	// Push distinguishes push-served from pull-served (KindServed) and
	// push-corrupted from pull-corrupted (KindCorrupt).
	Push bool `json:"push,omitempty"`
	// Attempt is the 1-based re-request number (KindRetry only).
	Attempt int `json:"attempt,omitempty"`
	// Cell is the broadcast cell the event belongs to in multi-cell runs,
	// stamped by a Tag tracer; 0 (omitted) in single-cell runs.
	Cell int `json:"cell,omitempty"`
	// Reason qualifies KindHandoffRefused events: "expired" (deadline passed
	// in transit), "shed" (admission control), "no-item" (item absent from
	// the destination cell's catalog) or "horizon" (transit would end past
	// the simulation horizon). On span kinds it carries the admission
	// verdict (KindSpanStart/KindSpanAttach) or terminal outcome
	// (KindSpanEnd).
	Reason string `json:"reason,omitempty"`
	// Req is the globally unique span/request ID on span provenance events
	// (0 = not a span event). Cluster runs namespace IDs per cell so links
	// survive stream merging.
	Req int64 `json:"req,omitempty"`
	// Score is the selection score: the entry's post-add score on
	// KindSpanEnqueue, the winning score on KindDecision.
	Score float64 `json:"score,omitempty"`
	// RunnerUp and RunnerUpScore identify the second-best queue entry at a
	// KindDecision extraction (0/0 when the queue held a single entry).
	RunnerUp      int     `json:"runner_up,omitempty"`
	RunnerUpScore float64 `json:"runner_up_score,omitempty"`
	// Start is the service (transmission) start time on KindSpanEnd served
	// outcomes and KindSpanLoss events, so wait and service segments can be
	// split exactly during span reconstruction. Handoff origin and
	// destination cells ride on the Cell tags of the out/in events.
	Start float64 `json:"start,omitempty"`
	// Snap is the embedded telemetry snapshot (KindSnapshot only).
	Snap *telemetry.Snapshot `json:"snap,omitempty"`
}

// Tracer consumes events. Implementations must tolerate high event rates;
// Event is called synchronously from the simulation loop.
type Tracer interface {
	Event(e Event)
}

// Nop discards all events.
type Nop struct{}

// Event implements Tracer.
func (Nop) Event(Event) {}

// Counter tallies events by kind — cheap tracing for tests and sanity
// checks.
type Counter struct {
	counts map[Kind]int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: make(map[Kind]int64)} }

// Event implements Tracer.
func (c *Counter) Event(e Event) { c.counts[e.Kind]++ }

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) int64 { return c.counts[k] }

// Total returns the total event count.
func (c *Counter) Total() int64 {
	var n int64
	//lint:allow maporder commutative integer sum; the total is independent of visit order
	for _, v := range c.counts {
		n += v
	}
	return n
}

// JSONL streams events as JSON lines. Close (or Flush) must be called to
// drain the buffer.
type JSONL struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int64
}

// NewJSONL wraps a writer.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Event implements Tracer. The first encoding error sticks and is reported
// by Flush.
func (j *JSONL) Event(e Event) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = err
		return
	}
	j.n++
}

// Events returns the number of successfully encoded events.
func (j *JSONL) Events() int64 { return j.n }

// Flush drains the buffer and returns the first error encountered.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Tag stamps a fixed cell ID onto every event before forwarding — the
// cell-ID dimension of a multi-cell trace. Each cell wraps its own
// downstream tracer, so parallel cells never share tracer state.
type Tag struct {
	// Cell is the ID stamped onto every event.
	Cell int
	// Next receives the stamped events.
	Next Tracer
}

// Event implements Tracer.
func (t Tag) Event(e Event) {
	e.Cell = t.Cell
	t.Next.Event(e)
}

// Buffer records events in memory, in emission order. Cluster runs give
// each cell its own Buffer during the parallel advance and merge the
// streams deterministically afterwards (MergeByTime).
type Buffer struct {
	// Events holds every recorded event.
	Events []Event
}

// Event implements Tracer.
func (b *Buffer) Event(e Event) { b.Events = append(b.Events, e) }

// MergeByTime merges per-cell event streams — each already in nondecreasing
// time order, as the engine emits them — into one stream ordered by time,
// ties broken by stream index then original order. The merge is a pure
// function of its inputs, so a merged multi-cell trace is as deterministic
// as the per-cell runs that produced it.
func MergeByTime(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Event, 0, total)
	idx := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || s[idx[i]].T < streams[best][idx[best]].T {
				best = i
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Event implements Tracer.
func (m Multi) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}

// Read parses a JSONL trace stream back into events.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
	return out, nil
}

// ClassStats is the per-class aggregate recomputed from a trace.
type ClassStats struct {
	// Served counts KindServed events for the class.
	Served int64
	// SumDelay accumulates completion − arrival over served requests.
	SumDelay float64
}

// MeanDelay returns SumDelay/Served, 0 when empty.
func (cs ClassStats) MeanDelay() float64 {
	if cs.Served == 0 {
		return 0
	}
	return cs.SumDelay / float64(cs.Served)
}

// Replay recomputes per-class delay statistics from a trace — an
// independent audit of the simulator's live metric collectors. numClasses
// bounds the class index; out-of-range classes error.
func Replay(events []Event, numClasses int) ([]ClassStats, error) {
	if numClasses <= 0 {
		return nil, fmt.Errorf("trace: numClasses %d", numClasses)
	}
	out := make([]ClassStats, numClasses)
	for i, e := range events {
		if e.Kind != KindServed {
			continue
		}
		if e.Class < 0 || int(e.Class) >= numClasses {
			return nil, fmt.Errorf("trace: event %d has class %d outside [0,%d)", i, e.Class, numClasses)
		}
		out[e.Class].Served++
		out[e.Class].SumDelay += e.T - e.Arrival
	}
	return out, nil
}
