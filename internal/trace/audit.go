package trace

import (
	"fmt"

	"hybridqos/internal/telemetry"
)

// Apply folds one event into a telemetry collector. This is the single
// definition of the event → metric mapping: the live engine routes every
// emitted event through it, and VerifySnapshots replays a recorded stream
// through it, so the two sides agree by construction. Gauge-backed metrics
// (queue depth, bandwidth occupancy) sample live engine state and are not
// derivable from events; the engine feeds those to the collector directly
// and the replay audit excludes them.
func Apply(c *telemetry.Collector, e Event) {
	if c == nil {
		return
	}
	switch e.Kind {
	case KindArrival:
		c.Arrival(int(e.Class))
	case KindServed:
		c.Served(int(e.Class), e.T-e.Arrival, e.Push)
	case KindPushComplete:
		c.PushComplete()
	case KindPullComplete:
		c.PullComplete()
	case KindBlocked:
		c.Blocked(int(e.Class), e.Requests)
	case KindCorrupt:
		c.Corrupt(e.Push)
	case KindRetry:
		c.Retry(int(e.Class))
	case KindShed:
		c.Shed(int(e.Class))
	case KindHandoff:
		c.Handoff(int(e.Class))
	case KindHandoffRefused:
		c.HandoffRefused(int(e.Class))
	case KindSpanEnd:
		// Span provenance is additive: every metric increment already rides
		// on a primary kind, so span events only contribute exemplars —
		// sampled span IDs attached to the delay-histogram bucket the served
		// request landed in. Exemplar state is excluded from DiffReplay
		// (like gauges), so replay audits are unaffected.
		if e.Reason == EndServed {
			c.Exemplar(int(e.Class), e.T-e.Arrival, e.Req)
		}
	}
}

// Snapshots extracts the embedded telemetry snapshots from an event stream,
// in trace order.
func Snapshots(events []Event) []*telemetry.Snapshot {
	var out []*telemetry.Snapshot
	for _, e := range events {
		if e.Kind == KindSnapshot && e.Snap != nil {
			out = append(out, e.Snap)
		}
	}
	return out
}

// VerifySnapshots replays an event stream through a fresh collector and
// cross-checks every embedded snapshot against the replayed state — the
// counters and histogram buckets must match bit-for-bit. It returns the
// number of snapshots verified; the first divergence (or a KindSnapshot
// event with no payload) errors. A trace with no snapshots verifies
// vacuously with count 0.
func VerifySnapshots(events []Event) (int, error) {
	c, err := telemetry.New(telemetry.Options{})
	if err != nil {
		return 0, err
	}
	verified := 0
	for i, e := range events {
		if e.Kind != KindSnapshot {
			Apply(c, e)
			continue
		}
		if e.Snap == nil {
			return verified, fmt.Errorf("trace: event %d: snapshot event without payload", i)
		}
		got := c.TakeSnapshot(e.T)
		if err := telemetry.DiffReplay(got, e.Snap); err != nil {
			return verified, fmt.Errorf("trace: snapshot %d (t=%g): %w", e.Snap.Seq, e.T, err)
		}
		verified++
	}
	return verified, nil
}
