package airindex

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
)

func cfg(t *testing.T, k, m int, indexLen float64) Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		t.Fatal(err)
	}
	return Config{Catalog: cat, Cutoff: k, IndexLen: indexLen, M: m}
}

func TestValidate(t *testing.T) {
	good := cfg(t, 40, 4, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Catalog = nil },
		func(c *Config) { c.Cutoff = 0 },
		func(c *Config) { c.Cutoff = 101 },
		func(c *Config) { c.IndexLen = 0 },
		func(c *Config) { c.IndexLen = math.NaN() },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.M = c.Cutoff + 1 },
	}
	for i, mutate := range bad {
		c := cfg(t, 40, 4, 0.5)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAnalyzeBasicIdentities(t *testing.T) {
	c := cfg(t, 40, 4, 0.5)
	m, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Catalog.PushCycleLength(40)
	if math.Abs(m.CycleLength-(data+4*0.5)) > 1e-12 {
		t.Fatalf("cycle %g, want data %g + 2", m.CycleLength, data)
	}
	if m.TuningTime >= m.AccessTime {
		t.Fatalf("tuning %g not below access %g", m.TuningTime, m.AccessTime)
	}
	if m.DozeFraction <= 0 || m.DozeFraction >= 1 {
		t.Fatalf("doze fraction %g", m.DozeFraction)
	}
}

func TestAccessTimeUShapedTuningConstant(t *testing.T) {
	c := cfg(t, 40, 1, 0.5)
	sweep, err := Sweep(c, 40)
	if err != nil {
		t.Fatal(err)
	}
	// U-shape: the minimum is interior, with access falling from m=1 to
	// the optimum and rising toward m=K.
	minIdx := 0
	for i, m := range sweep {
		if m.AccessTime < sweep[minIdx].AccessTime {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(sweep)-1 {
		t.Fatalf("access-time optimum at boundary m=%d", minIdx+1)
	}
	if sweep[0].AccessTime <= sweep[minIdx].AccessTime {
		t.Fatal("m=1 not worse than optimum")
	}
	if sweep[len(sweep)-1].AccessTime <= sweep[minIdx].AccessTime {
		t.Fatal("m=K not worse than optimum")
	}
	// Tuning time is constant in m under the index-first protocol.
	for i := 1; i < len(sweep); i++ {
		if math.Abs(sweep[i].TuningTime-sweep[0].TuningTime) > 1e-12 {
			t.Fatalf("tuning time changed with m: %g vs %g",
				sweep[i].TuningTime, sweep[0].TuningTime)
		}
	}
}

func TestOptimalMMatchesClassicRule(t *testing.T) {
	c := cfg(t, 40, 1, 0.5)
	mStar, metrics, err := OptimalM(c)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Catalog.PushCycleLength(40)
	want := math.Sqrt(data / 0.5)
	if math.Abs(float64(mStar)-want) > 2 {
		t.Fatalf("m* = %d, classic rule gives %.1f", mStar, want)
	}
	// The optimum must beat its neighbours on the discrete grid.
	for _, m := range []int{mStar - 1, mStar + 1} {
		if m < 1 || m > c.Cutoff {
			continue
		}
		cc := c
		cc.M = m
		got, err := Analyze(cc)
		if err != nil {
			t.Fatal(err)
		}
		if got.AccessTime < metrics.AccessTime {
			t.Fatalf("m=%d beats reported optimum m*=%d", m, mStar)
		}
	}
}

func TestOptimalMClamps(t *testing.T) {
	// Huge index length: m*=1.
	c := cfg(t, 40, 1, 1e6)
	mStar, _, err := OptimalM(c)
	if err != nil {
		t.Fatal(err)
	}
	if mStar != 1 {
		t.Fatalf("m* = %d with enormous index, want 1", mStar)
	}
	// Tiny index length: clamped at K.
	c2 := cfg(t, 10, 1, 1e-6)
	mStar2, _, err := OptimalM(c2)
	if err != nil {
		t.Fatal(err)
	}
	if mStar2 != 10 {
		t.Fatalf("m* = %d with tiny index, want clamp at K=10", mStar2)
	}
}

func TestDozeFractionHighAtOptimum(t *testing.T) {
	// The point of air indexing: at the optimal m the client dozes through
	// the vast majority of its wait.
	c := cfg(t, 40, 1, 0.5)
	_, metrics, err := OptimalM(c)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.DozeFraction < 0.7 {
		t.Fatalf("doze fraction at m* only %g", metrics.DozeFraction)
	}
}

func TestSweepErrors(t *testing.T) {
	c := cfg(t, 40, 1, 0.5)
	if _, err := Sweep(c, 0); err == nil {
		t.Fatal("mMax 0 accepted")
	}
	// mMax beyond K clamps rather than errors.
	out, err := Sweep(c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 40 {
		t.Fatalf("%d sweep points, want clamp at K=40", len(out))
	}
}
