// Package airindex models (1, m) air indexing on the push channel — the
// classic energy-efficiency companion to broadcast scheduling (Imielinski,
// Viswanathan, Badrinath): the flat broadcast cycle is augmented with m
// evenly spaced index segments announcing the upcoming schedule, so a
// battery-powered client can DOZE instead of listening continuously.
//
// Two client-side metrics per request:
//
//   - access time — request to end of item reception; U-shaped in m under
//     the index-first protocol (a larger m shortens the wait for the next
//     index but bloats the cycle with index segments);
//   - tuning time — time the receiver is actively listening: one index
//     segment plus the item itself, with the receiver dozing everywhere
//     else (constant in m).
//
// The package provides closed-form expectations for the flat hybrid push
// cycle and the classic access-optimal rule m* ≈ sqrt(Data/IndexLen).
package airindex

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
)

// Config parameterises the indexed push channel.
type Config struct {
	// Catalog supplies item lengths and popularity.
	Catalog *catalog.Catalog
	// Cutoff is the push set size K (ranks 1..K are in the cycle).
	Cutoff int
	// IndexLen is one index segment's transmission length in broadcast
	// units.
	IndexLen float64
	// M is the number of index segments per cycle.
	M int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Catalog == nil {
		return fmt.Errorf("airindex: nil catalog")
	}
	if c.Cutoff < 1 || c.Cutoff > c.Catalog.D() {
		return fmt.Errorf("airindex: cutoff %d out of [1,%d]", c.Cutoff, c.Catalog.D())
	}
	if c.IndexLen <= 0 || math.IsNaN(c.IndexLen) || math.IsInf(c.IndexLen, 0) {
		return fmt.Errorf("airindex: index length %g", c.IndexLen)
	}
	if c.M < 1 || c.M > c.Cutoff {
		return fmt.Errorf("airindex: m=%d outside [1,%d]", c.M, c.Cutoff)
	}
	return nil
}

// Metrics are the expected per-request client-side costs for push items.
type Metrics struct {
	// CycleLength is the indexed broadcast cycle: data plus m index
	// segments.
	CycleLength float64
	// AccessTime is the expected request-to-reception time under the
	// index-first protocol: wait for the next index segment (dozing),
	// read it, doze to the item's slot, receive the item.
	AccessTime float64
	// TuningTime is the expected active-listening time: one index segment
	// plus the item itself (the probe synchronises on bucket pointers and
	// the receiver dozes everywhere else).
	TuningTime float64
	// DozeFraction is 1 − TuningTime/AccessTime, the fraction of the wait
	// the receiver can sleep through.
	DozeFraction float64
}

// Analyze returns the expected metrics for the configuration.
//
// Derivation (standard (1, m) analysis adapted to heterogeneous lengths):
// the data portion of the cycle is Data = Σ_{i≤K} L_i; the indexed cycle is
// C = Data + m·IndexLen and index segments are C/m apart. Under the
// index-first access protocol a client probes at a uniform instant, dozes
// until the next index (C/(2m) on average), reads it (IndexLen), then dozes
// until its item (C/2 on average over items and phases):
//
//	E[access] = C/(2m) + IndexLen + C/2 + E_P[L]
//	E[tune]   = IndexLen + E_P[L]
//
// where E_P[L] is the popularity-weighted mean push item length. Access is
// U-shaped in m (the C/(2m) probe term falls, the m·IndexLen cycle bloat
// grows); tuning is constant — indexing buys energy with a bounded access
// penalty.
func Analyze(c Config) (Metrics, error) {
	if err := c.Validate(); err != nil {
		return Metrics{}, err
	}
	data := c.Catalog.PushCycleLength(c.Cutoff)
	mass := c.Catalog.PushMass(c.Cutoff)
	meanItem := c.Catalog.WeightedPushLength(c.Cutoff) / mass
	cycle := data + float64(c.M)*c.IndexLen

	access := cycle/(2*float64(c.M)) + c.IndexLen + cycle/2 + meanItem
	tune := c.IndexLen + meanItem
	m := Metrics{
		CycleLength: cycle,
		AccessTime:  access,
		TuningTime:  tune,
	}
	if access > 0 {
		m.DozeFraction = 1 - tune/access
	}
	return m, nil
}

// OptimalM returns the m minimising expected ACCESS time — the classic
// (1, m) result m* = sqrt(Data/IndexLen) — clamped to [1, K], alongside
// the metrics at that m. (Tuning time is constant in m under the
// index-first protocol, so the access optimum is the right default.)
func OptimalM(c Config) (int, Metrics, error) {
	probe := c
	probe.M = 1
	if err := probe.Validate(); err != nil {
		return 0, Metrics{}, err
	}
	data := c.Catalog.PushCycleLength(c.Cutoff)
	mStar := int(math.Round(math.Sqrt(data / c.IndexLen)))
	if mStar < 1 {
		mStar = 1
	}
	if mStar > c.Cutoff {
		mStar = c.Cutoff
	}
	// The rounded analytic optimum can be off by one on a discrete grid;
	// check the neighbours.
	best := -1
	var bestMetrics Metrics
	for _, m := range []int{mStar - 1, mStar, mStar + 1} {
		if m < 1 || m > c.Cutoff {
			continue
		}
		cfg := c
		cfg.M = m
		got, err := Analyze(cfg)
		if err != nil {
			return 0, Metrics{}, err
		}
		if best == -1 || got.AccessTime < bestMetrics.AccessTime {
			best, bestMetrics = m, got
		}
	}
	return best, bestMetrics, nil
}

// Sweep evaluates Analyze for every m in [1, mMax].
func Sweep(c Config, mMax int) ([]Metrics, error) {
	if mMax < 1 {
		return nil, fmt.Errorf("airindex: mMax %d", mMax)
	}
	if mMax > c.Cutoff {
		mMax = c.Cutoff
	}
	out := make([]Metrics, 0, mMax)
	for m := 1; m <= mMax; m++ {
		cfg := c
		cfg.M = m
		got, err := Analyze(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, got)
	}
	return out, nil
}
