// Package clients models the client population and its service
// classification. The paper (assumptions 5–6) divides clients into three
// classes — Class-A (highest priority), Class-B (medium) and Class-C
// (lowest) — with priority weights in ratio 3:2:1 and a Zipf-skewed
// population split (fewest Class-A clients, most Class-C).
//
// The package is written for an arbitrary number of classes so multi-class
// experiments (section 4.2.2, "Effect of Multiple Service Classes") reuse the
// same machinery.
package clients

import (
	"fmt"
	"math"

	"hybridqos/internal/rng"
)

// Class identifies a service class, 0-based. Class 0 is the highest-priority
// class (the paper's Class-A).
type Class int

// String renders classes A, B, C, ... as in the paper.
func (c Class) String() string {
	if c < 0 {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	if c < 26 {
		return "Class-" + string(rune('A'+int(c)))
	}
	return fmt.Sprintf("Class-%d", int(c))
}

// Classification describes the service classes: their priority weights and
// the probability that an incoming request belongs to each class.
type Classification struct {
	weights []float64
	probs   []float64
	alias   *rng.Alias
}

// Config parameterises a Classification.
type Config struct {
	// Weights are the per-class priority weights q_c, highest-priority class
	// first. The paper's ratio "1::2::3" with Class-A highest is realised as
	// weights {3, 2, 1}.
	Weights []float64
	// PopulationSkew is the Zipf θ governing how clients split across
	// classes. The paper's assumption 6 puts the FEWEST clients in the
	// highest class, so class c (0-based) receives probability proportional
	// to (1/(numClasses-c))^θ — i.e. Zipf mass in REVERSE class order.
	// Skew 0 splits clients uniformly.
	PopulationSkew float64
}

// PaperConfig is the paper's three-class setup: priorities 3:2:1 and a
// Zipf(1) population split (A smallest, C largest).
func PaperConfig() Config {
	return Config{Weights: []float64{3, 2, 1}, PopulationSkew: 1.0}
}

// New builds a Classification. It returns an error if there are no classes,
// any weight is non-positive/NaN/Inf, weights are not strictly decreasing
// (class 0 must be the most important), or the skew is invalid.
func New(cfg Config) (*Classification, error) {
	n := len(cfg.Weights)
	if n == 0 {
		return nil, fmt.Errorf("clients: no classes configured")
	}
	for i, w := range cfg.Weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("clients: invalid weight %g for class %d", w, i)
		}
		if i > 0 && w >= cfg.Weights[i-1] {
			return nil, fmt.Errorf("clients: weights must strictly decrease (class 0 most important); class %d has %g >= %g", i, w, cfg.Weights[i-1])
		}
	}
	if cfg.PopulationSkew < 0 || math.IsNaN(cfg.PopulationSkew) || math.IsInf(cfg.PopulationSkew, 0) {
		return nil, fmt.Errorf("clients: invalid population skew %g", cfg.PopulationSkew)
	}

	weights := make([]float64, n)
	copy(weights, cfg.Weights)

	// Reverse-order Zipf: class n-1 (lowest priority) gets rank-1 mass.
	probs := make([]float64, n)
	sum := 0.0
	for c := 0; c < n; c++ {
		probs[c] = math.Pow(1/float64(n-c), cfg.PopulationSkew)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
	return &Classification{
		weights: weights,
		probs:   probs,
		alias:   rng.MustAlias(probs),
	}, nil
}

// Must is New that panics on error.
func Must(cfg Config) *Classification {
	cl, err := New(cfg)
	if err != nil {
		panic(fmt.Errorf("clients: Must: %w", err))
	}
	return cl
}

// NumClasses returns the number of service classes.
func (cl *Classification) NumClasses() int { return len(cl.weights) }

// Weight returns the priority weight q_c of class c.
func (cl *Classification) Weight(c Class) float64 {
	cl.check(c)
	return cl.weights[c]
}

// Weights returns a copy of all class weights, class 0 first.
func (cl *Classification) Weights() []float64 {
	out := make([]float64, len(cl.weights))
	copy(out, cl.weights)
	return out
}

// Prob returns the probability that a request originates from class c.
func (cl *Classification) Prob(c Class) float64 {
	cl.check(c)
	return cl.probs[c]
}

// Probs returns a copy of the per-class request probabilities.
func (cl *Classification) Probs() []float64 {
	out := make([]float64, len(cl.probs))
	copy(out, cl.probs)
	return out
}

// SampleClass draws the class of an incoming request.
func (cl *Classification) SampleClass(r *rng.Source) Class {
	return Class(cl.alias.Sample(r))
}

// MaxWeight returns the largest (class 0) priority weight.
func (cl *Classification) MaxWeight() float64 { return cl.weights[0] }

func (cl *Classification) check(c Class) {
	if c < 0 || int(c) >= len(cl.weights) {
		panic(fmt.Sprintf("clients: class %d out of [0,%d)", int(c), len(cl.weights)))
	}
}

// Population materialises a finite set of clients assigned to classes, for
// examples and workloads that want identifiable clients rather than just a
// class marginal.
type Population struct {
	classOf []Class
	cl      *Classification
}

// NewPopulation assigns n clients to classes by sampling the classification's
// class distribution with the given seed. n must be positive.
func NewPopulation(cl *Classification, n int, seed uint64) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("clients: population size must be positive, got %d", n)
	}
	r := rng.New(seed).Split("population")
	p := &Population{classOf: make([]Class, n), cl: cl}
	for i := range p.classOf {
		p.classOf[i] = cl.SampleClass(r)
	}
	return p, nil
}

// Size returns the number of clients.
func (p *Population) Size() int { return len(p.classOf) }

// ClassOf returns the class of client id (0-based).
func (p *Population) ClassOf(id int) Class {
	if id < 0 || id >= len(p.classOf) {
		panic(fmt.Sprintf("clients: client id %d out of [0,%d)", id, len(p.classOf)))
	}
	return p.classOf[id]
}

// Census returns the number of clients in each class.
func (p *Population) Census() []int {
	counts := make([]int, p.cl.NumClasses())
	for _, c := range p.classOf {
		counts[c]++
	}
	return counts
}

// SampleClient draws a uniformly random client id.
func (p *Population) SampleClient(r *rng.Source) int {
	return r.Intn(len(p.classOf))
}
