package clients

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/rng"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		0:  "Class-A",
		1:  "Class-B",
		2:  "Class-C",
		25: "Class-Z",
		26: "Class-26",
		-1: "Class(-1)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestNewErrors(t *testing.T) {
	bad := []Config{
		{},
		{Weights: []float64{0}},
		{Weights: []float64{-1}},
		{Weights: []float64{math.NaN()}},
		{Weights: []float64{3, 3, 1}}, // not strictly decreasing
		{Weights: []float64{1, 2, 3}}, // increasing: class 0 must dominate
		{Weights: []float64{3, 2, 1}, PopulationSkew: -1},
		{Weights: []float64{3, 2, 1}, PopulationSkew: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestPaperConfig(t *testing.T) {
	cl := Must(PaperConfig())
	if cl.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", cl.NumClasses())
	}
	if cl.Weight(0) != 3 || cl.Weight(1) != 2 || cl.Weight(2) != 1 {
		t.Fatalf("weights = %v, want 3,2,1", cl.Weights())
	}
	if cl.MaxWeight() != 3 {
		t.Fatalf("MaxWeight = %g", cl.MaxWeight())
	}
	// Assumption 6: fewest Class-A, most Class-C.
	if !(cl.Prob(0) < cl.Prob(1) && cl.Prob(1) < cl.Prob(2)) {
		t.Fatalf("class probabilities not increasing A<B<C: %v", cl.Probs())
	}
	sum := 0.0
	for c := 0; c < 3; c++ {
		sum += cl.Prob(Class(c))
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("class probabilities sum to %g", sum)
	}
}

func TestZeroSkewUniformSplit(t *testing.T) {
	cl := Must(Config{Weights: []float64{3, 2, 1}, PopulationSkew: 0})
	for c := 0; c < 3; c++ {
		if math.Abs(cl.Prob(Class(c))-1.0/3) > 1e-12 {
			t.Fatalf("class %d prob %g, want 1/3", c, cl.Prob(Class(c)))
		}
	}
}

func TestPaperSplitExactValues(t *testing.T) {
	// Skew 1, three classes: masses proportional to 1/3, 1/2, 1 for A, B, C.
	cl := Must(PaperConfig())
	den := 1.0/3 + 1.0/2 + 1.0
	want := []float64{(1.0 / 3) / den, (1.0 / 2) / den, 1.0 / den}
	for c, w := range want {
		if math.Abs(cl.Prob(Class(c))-w) > 1e-12 {
			t.Errorf("class %d prob %g, want %g", c, cl.Prob(Class(c)), w)
		}
	}
}

func TestSampleClassDistribution(t *testing.T) {
	cl := Must(PaperConfig())
	r := rng.New(9)
	const draws = 300000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[cl.SampleClass(r)]++
	}
	for c := 0; c < 3; c++ {
		want := cl.Prob(Class(c)) * draws
		if math.Abs(float64(counts[c])-want) > 5*math.Sqrt(want) {
			t.Errorf("class %d sampled %d, want ~%.0f", c, counts[c], want)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	cl := Must(PaperConfig())
	for _, c := range []Class{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Weight(%d) did not panic", int(c))
				}
			}()
			cl.Weight(c)
		}()
	}
}

func TestCopiesAreCopies(t *testing.T) {
	cl := Must(PaperConfig())
	w := cl.Weights()
	w[0] = 99
	if cl.Weight(0) == 99 {
		t.Fatal("Weights() exposed internal state")
	}
	p := cl.Probs()
	p[0] = 99
	if cl.Prob(0) == 99 {
		t.Fatal("Probs() exposed internal state")
	}
}

func TestPopulation(t *testing.T) {
	cl := Must(PaperConfig())
	p, err := NewPopulation(cl, 10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 10000 {
		t.Fatalf("Size = %d", p.Size())
	}
	census := p.Census()
	total := 0
	for _, n := range census {
		total += n
	}
	if total != 10000 {
		t.Fatalf("census sums to %d", total)
	}
	// Fewest A, most C with high probability at this size.
	if !(census[0] < census[1] && census[1] < census[2]) {
		t.Fatalf("census not increasing A<B<C: %v", census)
	}
	// Determinism.
	p2, _ := NewPopulation(cl, 10000, 4)
	for i := 0; i < p.Size(); i++ {
		if p.ClassOf(i) != p2.ClassOf(i) {
			t.Fatalf("client %d class differs across equal seeds", i)
		}
	}
}

func TestPopulationErrors(t *testing.T) {
	cl := Must(PaperConfig())
	if _, err := NewPopulation(cl, 0, 1); err == nil {
		t.Fatal("NewPopulation(0) succeeded")
	}
	p, _ := NewPopulation(cl, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ClassOf(5) did not panic")
		}
	}()
	p.ClassOf(5)
}

func TestSampleClientInRange(t *testing.T) {
	cl := Must(PaperConfig())
	p, _ := NewPopulation(cl, 17, 2)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		id := p.SampleClient(r)
		if id < 0 || id >= 17 {
			t.Fatalf("SampleClient = %d", id)
		}
	}
}

// Property: for any class count 1..8 and skew 0..2, the class probabilities
// are a valid non-decreasing distribution (lowest class always has the most
// mass) and weights remain strictly decreasing.
func TestPropertyClassification(t *testing.T) {
	check := func(nRaw, skewRaw uint8) bool {
		n := int(nRaw%8) + 1
		skew := float64(skewRaw%200) / 100
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(n - i) // n, n-1, ..., 1
		}
		cl, err := New(Config{Weights: weights, PopulationSkew: skew})
		if err != nil {
			return false
		}
		sum := 0.0
		for c := 0; c < n; c++ {
			p := cl.Prob(Class(c))
			if p <= 0 {
				return false
			}
			if c > 0 && p < cl.Prob(Class(c-1))-1e-15 {
				return false // mass must not decrease toward lower classes
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
