package hybridqos

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON-friendly: Config is a plain struct, so the standard
// encoding/json round-trip works; these helpers add file I/O and
// validation so CLI tools and experiment scripts can share configurations.

// SaveConfig writes the configuration as indented JSON.
func SaveConfig(c Config, path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("hybridqos: encoding config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads a configuration previously written by SaveConfig (or
// hand-authored). The configuration is validated by building it; an invalid
// file errors here rather than at Simulate time.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("hybridqos: decoding %s: %w", path, err)
	}
	if _, err := c.build(); err != nil {
		return Config{}, fmt.Errorf("hybridqos: %s: %w", path, err)
	}
	return c, nil
}
