package hybridqos

import (
	"fmt"
	"os"

	"hybridqos/internal/cluster"
	"hybridqos/internal/core"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
	"hybridqos/internal/workload"
)

// ClusterOptions federates the configured system into a multi-cell cluster
// (see Config.Cluster): N independent cells, each running the full engine
// over its own catalog and client population, with clients roaming between
// cells mid-request. The cluster is bulk-synchronous and bit-identical at
// any worker count; SimulateCluster runs it.
type ClusterOptions struct {
	// Cells is the number of broadcast cells (≥ 1).
	Cells int
	// CatalogOverlap is the fraction of catalog ranks replicated in every
	// cell, in [0,1]: shared ranks are global content a roamer can still
	// pull at its destination; the rest is cell-local and roaming away from
	// it loses the request ("no-item" refusal).
	CatalogOverlap float64
	// MobilityRate is the per-pending-request roam intensity (a request
	// roams within an epoch of length HandoffEvery with probability
	// 1−exp(−rate·epoch)). 0 disables mobility.
	MobilityRate float64
	// AttachDelay is the inter-cell transit time in broadcast units; the
	// request deadline keeps running in transit.
	AttachDelay float64
	// Routing names the cross-cell routing policy; RoutingPolicies lists
	// the registry ("nearest", "least-loaded", "class-affine"; empty =
	// "nearest").
	Routing string
	// HandoffEvery is the epoch length between cross-cell barriers; 0 runs
	// the horizon as one epoch (mobility off only).
	HandoffEvery float64
	// HotCell and HotFactor (> 1) multiply one cell's request rate — the
	// asymmetric-load scenario. HotFactor 0 disables the hot spot.
	HotCell   int
	HotFactor float64
	// SaturationLoad, when positive, marks a cell saturated once its
	// pending load stays at or above this for SaturationEpochs consecutive
	// barriers.
	SaturationLoad   int
	SaturationEpochs int
}

// RoutingPolicies returns the sorted registered cross-cell routing policy
// names (built-ins plus externally registered ones).
func RoutingPolicies() []string { return cluster.RoutingNames() }

// ClusterCellResult summarises one cell of a cluster run.
type ClusterCellResult struct {
	// Cell is the cell index.
	Cell int
	// OverallDelay is the cell's request-weighted mean access time.
	OverallDelay float64
	// Served pools the cell's served requests across classes.
	Served int64
	// HandoffsIn, HandoffsOut and HandoffRefusals count the cell's roaming
	// traffic: accepted arrivals, departures, and turned-away roamers.
	HandoffsIn, HandoffsOut, HandoffRefusals int64
	// Saturated reports whether the saturation detector fired; SaturatedAt
	// is the onset time (-1 when it never fired).
	Saturated   bool
	SaturatedAt float64
	// FinalLoad is the cell's pending backlog at the horizon.
	FinalLoad int
}

// ClusterResult reports a cluster run: the pooled per-class QoS plus
// per-cell summaries.
type ClusterResult struct {
	// Cells echoes the federation size; SharedRanks is the size of the
	// global catalog prefix.
	Cells, SharedRanks int
	// PerClass pools each class's outcomes across every cell: delay
	// statistics merged, counters summed. DropRate/P95 fields not
	// meaningful cluster-wide stay zero when unavailable.
	PerClass []ClassResult
	// OverallDelay is the request-weighted mean access time across the
	// whole federation; TotalCost is Σ_c q_c · delay_c over pooled means.
	OverallDelay, TotalCost float64
	// Handoffs and HandoffRefusals total the accepted and refused roaming
	// re-attachments.
	Handoffs, HandoffRefusals int64
	// SaturatedCells counts cells whose saturation detector fired.
	SaturatedCells int
	// PerCell has one summary per cell, cell 0 first.
	PerCell []ClusterCellResult
}

// clusterConfig lowers the public options onto internal/cluster, reusing
// the facade's base-config lowering for the per-cell template.
func (c Config) clusterConfig() (cluster.Config, error) {
	if c.Cluster == nil {
		return cluster.Config{}, fmt.Errorf("hybridqos: Config.Cluster not set")
	}
	base, err := c.build()
	if err != nil {
		return cluster.Config{}, err
	}
	// Stateful per-run components live in the per-cell hook, never in the
	// shared template (build only sets Items, for Rotation).
	base.Items = nil
	o := c.Cluster
	cc := cluster.Config{
		Cells:            o.Cells,
		Base:             base,
		CatalogOverlap:   o.CatalogOverlap,
		Mobility:         cluster.Mobility{Rate: o.MobilityRate, AttachDelay: o.AttachDelay},
		Routing:          o.Routing,
		HandoffEvery:     o.HandoffEvery,
		HotCell:          o.HotCell,
		HotFactor:        o.HotFactor,
		SaturationLoad:   o.SaturationLoad,
		SaturationEpochs: o.SaturationEpochs,
	}
	if c.Telemetry != nil {
		cc.TelemetryEvery = c.Telemetry.SnapshotEvery
	}
	cc.Exemplars = c.exemplarCount()
	cc.PerCell = func(_ int, cfg *core.Config) error {
		if c.Rotation != nil {
			rot, err := workload.NewRotatingPopularity(cfg.Catalog, c.Rotation.Period, c.Rotation.Shift)
			if err != nil {
				return err
			}
			cfg.Items = rot
		}
		if c.Uplink != nil {
			tb, err := uplink.NewTokenBucket(c.Uplink.Rate, c.Uplink.Burst)
			if err != nil {
				return err
			}
			cfg.Uplink = tb
		}
		if c.Faults != nil {
			lm, err := c.Faults.lossModel()
			if err != nil {
				return err
			}
			cfg.Loss = lm
		}
		return nil
	}
	return cc, nil
}

// SimulateCluster runs the configured system as a multi-cell federation and
// aggregates the results. One deterministic cluster run is performed
// (Config.Replications applies to Simulate, not to cluster runs); the cells
// advance in parallel on the shared work pool, bit-identically at any
// worker count.
func SimulateCluster(c Config) (*ClusterResult, error) {
	cc, err := c.clusterConfig()
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cc)
	if err != nil {
		return nil, err
	}
	res, err := cl.Run()
	if err != nil {
		return nil, err
	}
	out := &ClusterResult{
		Cells:          cc.Cells,
		SharedRanks:    cl.SharedRanks(),
		SaturatedCells: res.SaturatedCells,
	}
	for _, cm := range res.Aggregate.PerClass {
		out.PerClass = append(out.PerClass, ClassResult{
			Class:      cm.Class.String(),
			Weight:     cm.Weight,
			MeanDelay:  cm.Delay.Mean(),
			P95Delay:   cm.DelayHist.Percentile(95),
			Cost:       cm.Cost(),
			DropRate:   cm.DropRate(),
			Served:     cm.Served,
			Dropped:    cm.Dropped,
			Expired:    cm.Expired,
			CacheHits:  cm.CacheHits,
			UplinkLost: cm.UplinkLost,
			Retries:    cm.Retries,
			Failed:     cm.Failed,
			Shed:       cm.Shed,
		})
		out.Handoffs += cm.HandoffsIn
		out.HandoffRefusals += cm.HandoffRefusals
	}
	out.OverallDelay = res.Aggregate.OverallMeanDelay()
	out.TotalCost = res.Aggregate.TotalCost()
	for _, pc := range res.PerCell {
		cell := ClusterCellResult{
			Cell:         pc.Cell,
			OverallDelay: pc.Metrics.OverallMeanDelay(),
			Saturated:    pc.Saturated,
			SaturatedAt:  pc.SaturatedAt,
			FinalLoad:    pc.FinalLoad,
		}
		for _, cm := range pc.Metrics.PerClass {
			cell.Served += cm.Served
			cell.HandoffsIn += cm.HandoffsIn
			cell.HandoffsOut += cm.HandoffsOut
			cell.HandoffRefusals += cm.HandoffRefusals
		}
		out.PerCell = append(out.PerCell, cell)
	}
	return out, nil
}

// WriteClusterTrace runs ONE cluster simulation with per-cell event tracing
// enabled, merges the cell-stamped streams into a single time-ordered trace
// (the cluster analogue of WriteTrace) and writes it to path as JSON lines.
// It returns the number of events written; cmd/traceinfo renders the
// per-cell breakdown from the Cell stamps.
func WriteClusterTrace(c Config, path string) (int64, error) {
	cc, err := c.clusterConfig()
	if err != nil {
		return 0, err
	}
	cc.CollectTrace = true
	cl, err := cluster.New(cc)
	if err != nil {
		return 0, err
	}
	res, err := cl.Run()
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	j := trace.NewJSONL(f)
	for _, e := range res.Trace {
		j.Event(e)
	}
	if err := j.Flush(); err != nil {
		return 0, err
	}
	return j.Events(), f.Close()
}
