module hybridqos

go 1.22
