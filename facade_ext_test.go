package hybridqos

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRotationDegradesStalePushSet(t *testing.T) {
	static := quickConfig()
	static.Horizon = 8000
	a, err := Simulate(static)
	if err != nil {
		t.Fatal(err)
	}
	rotating := static
	rotating.Rotation = &RotationConfig{Period: 1500, Shift: 25}
	b, err := Simulate(rotating)
	if err != nil {
		t.Fatal(err)
	}
	if b.OverallDelay <= a.OverallDelay {
		t.Fatalf("rotation did not degrade delay: %g vs %g", b.OverallDelay, a.OverallDelay)
	}
}

func TestRotationValidation(t *testing.T) {
	c := quickConfig()
	c.Rotation = &RotationConfig{Period: 0, Shift: 1}
	if _, err := Simulate(c); err == nil {
		t.Fatal("zero rotation period accepted")
	}
	c.Rotation = &RotationConfig{Period: 10, Shift: 0}
	if _, err := Simulate(c); err == nil {
		t.Fatal("zero shift accepted")
	}
}

func TestRequestTTLExposed(t *testing.T) {
	c := quickConfig()
	c.RequestTTL = 25
	c.Horizon = 6000
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	var expired int64
	for _, cr := range r.PerClass {
		expired += cr.Expired
	}
	if expired == 0 {
		t.Fatal("tight TTL produced no expiries via the facade")
	}
	c.RequestTTL = -1
	if _, err := Simulate(c); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

func TestUplinkExposed(t *testing.T) {
	c := quickConfig()
	c.Uplink = &UplinkConfig{Rate: 0.4, Burst: 2}
	c.Horizon = 6000
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	var lost int64
	for _, cr := range r.PerClass {
		lost += cr.UplinkLost
	}
	if lost == 0 {
		t.Fatal("starved uplink lost nothing via the facade")
	}
	c.Uplink = &UplinkConfig{Rate: 0, Burst: 2}
	if _, err := Simulate(c); err == nil {
		t.Fatal("zero uplink rate accepted")
	}
}

func TestWriteAndReadTrace(t *testing.T) {
	c := quickConfig()
	c.Horizon = 1000
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	n, err := WriteTrace(c, path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events written")
	}
	times, ranks, err := ReadTraceArrivals(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 || len(times) != len(ranks) {
		t.Fatalf("arrivals: %d times, %d ranks", len(times), len(ranks))
	}
	prev := math.Inf(-1)
	for i, tm := range times {
		if tm < prev {
			t.Fatal("arrival times not monotone")
		}
		prev = tm
		if ranks[i] < 1 || ranks[i] > c.NumItems {
			t.Fatalf("rank %d out of range", ranks[i])
		}
	}
	if _, _, err := ReadTraceArrivals(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTraceInvalidConfig(t *testing.T) {
	c := quickConfig()
	c.Lambda = -1
	if _, err := WriteTrace(c, filepath.Join(t.TempDir(), "x.jsonl")); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAdaptiveControllerPublicAPI(t *testing.T) {
	c := quickConfig()
	c.Theta = 1.1
	c.Horizon = 12000
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, err := WriteTrace(c, path); err != nil {
		t.Fatal(err)
	}
	times, ranks, err := ReadTraceArrivals(path)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewAdaptiveController(c, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Cutoff() != c.Cutoff {
		t.Fatalf("initial cutoff %d", ctl.Cutoff())
	}
	for i := range ranks {
		ctl.Observe(ranks[i], times[i])
	}
	plans := ctl.Plans()
	if len(plans) == 0 {
		t.Fatal("no plans adopted")
	}
	last := plans[len(plans)-1]
	if math.Abs(last.Theta-1.1) > 0.2 {
		t.Fatalf("fitted θ=%g, want ~1.1", last.Theta)
	}
	if math.Abs(last.Lambda-c.Lambda) > 1 {
		t.Fatalf("fitted λ=%g, want ~%g", last.Lambda, c.Lambda)
	}
	if last.PredictedCost <= 0 {
		t.Fatalf("plan cost %g", last.PredictedCost)
	}
}

func TestAdaptiveControllerValidation(t *testing.T) {
	c := quickConfig()
	if _, err := NewAdaptiveController(c, 0); err == nil {
		t.Fatal("zero epoch accepted")
	}
	c.Lambda = -1
	if _, err := NewAdaptiveController(c, 100); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	c := PaperConfig()
	c.Bandwidth = &BandwidthConfig{Total: 8, Fractions: []float64{0.5, 0.3, 0.2}, DemandMean: 1.5}
	c.Rotation = &RotationConfig{Period: 100, Shift: 3}
	c.Uplink = &UplinkConfig{Rate: 4, Burst: 8}
	c.RequestTTL = 50
	c.PullPolicy = PolicyEDF
	c.PushScheduler = PushBroadcastDisk
	c.PushDisks = 4
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := SaveConfig(c, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumItems != c.NumItems || got.Theta != c.Theta || got.RequestTTL != 50 {
		t.Fatalf("round trip lost scalars: %+v", got)
	}
	if got.Bandwidth == nil || got.Bandwidth.Total != 8 {
		t.Fatal("round trip lost bandwidth")
	}
	if got.Rotation == nil || got.Rotation.Shift != 3 {
		t.Fatal("round trip lost rotation")
	}
	if got.Uplink == nil || got.Uplink.Burst != 8 {
		t.Fatal("round trip lost uplink")
	}
	if got.PullPolicy != PolicyEDF || got.PushScheduler != PushBroadcastDisk || got.PushDisks != 4 {
		t.Fatalf("round trip lost policy selection: %q/%q/%d",
			got.PullPolicy, got.PushScheduler, got.PushDisks)
	}
	// The loaded config must simulate: policy names resolve through the
	// registry after deserialisation.
	got.Horizon = 2000
	got.Replications = 1
	if _, err := Simulate(got); err != nil {
		t.Fatalf("loaded config does not simulate: %v", err)
	}
}

func TestLoadConfigRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"NumItems": -5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("invalid config loaded")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("malformed JSON loaded")
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestClientCacheExposed(t *testing.T) {
	c := quickConfig()
	c.Horizon = 8000
	c.ClientCache = &ClientCacheConfig{NumClients: 15, Capacity: 8} // default pix
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	var hits int64
	for _, cr := range r.PerClass {
		hits += cr.CacheHits
	}
	if hits == 0 {
		t.Fatal("no cache hits via facade")
	}
	for _, policy := range []string{"lru", "lfu", "pix"} {
		c.ClientCache.Policy = policy
		if _, err := Simulate(c); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
	c.ClientCache.Policy = "nonsense"
	if _, err := Simulate(c); err == nil {
		t.Fatal("unknown cache policy accepted")
	}
	c.ClientCache = &ClientCacheConfig{NumClients: 0, Capacity: 8}
	if _, err := Simulate(c); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestIndexingFacade(t *testing.T) {
	c := quickConfig()
	plan, err := PlanIndexing(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.M < 2 || plan.M > c.Cutoff {
		t.Fatalf("m* = %d implausible", plan.M)
	}
	if !(plan.TuningTime < plan.AccessTime) || plan.DozeFraction <= 0.5 {
		t.Fatalf("plan: %+v", plan)
	}
	sweep, err := SweepIndexing(c, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != c.Cutoff {
		t.Fatalf("sweep length %d, want clamp at K=%d", len(sweep), c.Cutoff)
	}
	for _, p := range sweep {
		if p.AccessTime < plan.AccessTime {
			t.Fatalf("PlanIndexing missed better m=%d", p.M)
		}
	}
	if _, err := PlanIndexing(c, 0); err == nil {
		t.Fatal("zero index length accepted")
	}
	bad := c
	bad.Lambda = -1
	if _, err := SweepIndexing(bad, 0.5, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestErrorPathsOnInvalidConfig(t *testing.T) {
	bad := quickConfig()
	bad.NumItems = 0
	if _, err := Predict(bad); err == nil {
		t.Fatal("Predict accepted invalid config")
	}
	if _, err := PredictSweep(bad, 1, 10); err == nil {
		t.Fatal("PredictSweep accepted invalid config")
	}
	if _, err := PredictOptimalCutoff(bad, 1, 10); err == nil {
		t.Fatal("PredictOptimalCutoff accepted invalid config")
	}
	if _, err := OptimizeCutoff(bad, 1, 10, 5, "cost"); err == nil {
		t.Fatal("OptimizeCutoff accepted invalid config")
	}
	if _, err := PlanIndexing(bad, 0.5); err == nil {
		t.Fatal("PlanIndexing accepted invalid config")
	}
}

func TestPredictSweepRangeErrors(t *testing.T) {
	c := quickConfig()
	if _, err := PredictSweep(c, 10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := PredictOptimalCutoff(c, -1, 10); err == nil {
		t.Fatal("negative kMin accepted")
	}
}

func TestWriteTraceBadPath(t *testing.T) {
	c := quickConfig()
	c.Horizon = 200
	if _, err := WriteTrace(c, filepath.Join(t.TempDir(), "no-such-dir", "x.jsonl")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestSaveConfigBadPath(t *testing.T) {
	if err := SaveConfig(PaperConfig(), filepath.Join(t.TempDir(), "no-such-dir", "cfg.json")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestOptimizeCutoffWithUplinkHonorsChannel(t *testing.T) {
	// The per-run hook must apply during sweeps too: a starved uplink
	// produces uplink losses in the best point's classes.
	c := quickConfig()
	c.Horizon = 2000
	c.Replications = 1
	c.Uplink = &UplinkConfig{Rate: 0.3, Burst: 2}
	best, err := OptimizeCutoff(c, 30, 60, 30, "cost")
	if err != nil {
		t.Fatal(err)
	}
	var lost int64
	for _, cr := range best.PerClass {
		lost += cr.UplinkLost
	}
	if lost == 0 {
		t.Fatal("sweep ignored the uplink configuration")
	}
}

func TestRunClosedLoopFacade(t *testing.T) {
	c := quickConfig()
	c.Theta = 1.0
	epochs, err := RunClosedLoop(c, 3, 4000, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("%d epochs", len(epochs))
	}
	if epochs[0].Cutoff != c.Cutoff {
		t.Fatalf("epoch 0 cutoff %d", epochs[0].Cutoff)
	}
	if epochs[0].ThetaHat == 0 {
		t.Fatal("no workload fit after epoch 0")
	}
	frozen, err := RunClosedLoop(c, 2, 2000, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if frozen[1].NextCutoff != c.Cutoff {
		t.Fatal("frozen loop re-planned")
	}
	bad := c
	bad.Lambda = -1
	if _, err := RunClosedLoop(bad, 2, 2000, 5, true); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := RunClosedLoop(c, 0, 2000, 5, true); err == nil {
		t.Fatal("zero epochs accepted")
	}
}
