package hybridqos

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybridqos/internal/trace"
)

func clusterTestConfig() Config {
	c := PaperConfig()
	c.Horizon = 500
	c.Replications = 1
	c.Cluster = &ClusterOptions{
		Cells:          4,
		CatalogOverlap: 0.8,
		MobilityRate:   0.05,
		AttachDelay:    1,
		Routing:        "least-loaded",
		HandoffEvery:   50,
		SaturationLoad: 100000,
	}
	return c
}

func TestSimulateCluster(t *testing.T) {
	res, err := SimulateCluster(clusterTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 4 || len(res.PerCell) != 4 {
		t.Fatalf("cells=%d percell=%d", res.Cells, len(res.PerCell))
	}
	if res.SharedRanks != 80 {
		t.Errorf("SharedRanks=%d, want 80", res.SharedRanks)
	}
	if len(res.PerClass) != 3 {
		t.Fatalf("%d classes", len(res.PerClass))
	}
	if res.PerClass[0].MeanDelay <= 0 || res.OverallDelay <= 0 {
		t.Error("no delay statistics")
	}
	// Differentiation survives federation: Class-A no slower than Class-C.
	if res.PerClass[0].MeanDelay > res.PerClass[2].MeanDelay*1.05 {
		t.Errorf("Class-A delay %.1f exceeds Class-C %.1f", res.PerClass[0].MeanDelay, res.PerClass[2].MeanDelay)
	}
	if res.Handoffs == 0 {
		t.Error("mobility produced no accepted handoffs")
	}
	var in int64
	for _, pc := range res.PerCell {
		in += pc.HandoffsIn
		if pc.Saturated {
			t.Errorf("cell %d saturated under an absurd threshold", pc.Cell)
		}
	}
	if in != res.Handoffs {
		t.Errorf("per-cell handoffs %d != aggregate %d", in, res.Handoffs)
	}

	// Deterministic: a second run is identical.
	again, err := SimulateCluster(clusterTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("SimulateCluster not deterministic")
	}
}

func TestSimulateClusterRequiresOptions(t *testing.T) {
	c := PaperConfig()
	if _, err := SimulateCluster(c); err == nil {
		t.Fatal("SimulateCluster accepted a config without Cluster options")
	}
}

func TestClusterConfigJSONRoundTrip(t *testing.T) {
	c := clusterTestConfig()
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := SaveConfig(c, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cluster, c.Cluster) {
		t.Errorf("cluster options lost in round-trip: %+v vs %+v", got.Cluster, c.Cluster)
	}
}

func TestRoutingPolicies(t *testing.T) {
	names := RoutingPolicies()
	want := map[string]bool{"nearest": true, "least-loaded": true, "class-affine": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing routing policies: %v (got %v)", want, names)
	}
}

// TestWriteClusterTrace round-trips a cluster trace through the JSONL
// writer and the trace reader: every cell id must appear on arrival events
// and at least one handoff must be recorded.
func TestWriteClusterTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.jsonl")
	n, err := WriteClusterTrace(clusterTestConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events written")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != n {
		t.Fatalf("read %d events, writer reported %d", len(events), n)
	}
	cells := map[int]bool{}
	handoffs := 0
	for i, e := range events {
		if i > 0 && e.T < events[i-1].T {
			t.Fatalf("trace not time-ordered at index %d", i)
		}
		if e.Kind == trace.KindArrival {
			cells[e.Cell] = true
		}
		if e.Kind == trace.KindHandoff {
			handoffs++
		}
	}
	if len(cells) != 4 {
		t.Errorf("arrivals seen in %d cells, want 4", len(cells))
	}
	if handoffs == 0 {
		t.Error("no handoff events in trace")
	}
}
