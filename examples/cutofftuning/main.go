// Cutofftuning: the paper's periodic cutoff re-optimisation (§3:
// "Periodically the algorithm is executed for different cutoff-points and
// obtains the optimal cutoff-point which minimizes the overall access
// time"), demonstrated against a workload whose popularity skew drifts
// across epochs — morning headlines concentrate interest (high θ), evening
// long-tail browsing spreads it (low θ).
//
// Each epoch the operator (1) asks the analytic model for the optimal K —
// microseconds, no simulation budget — then (2) validates the choice by
// simulating both the stale cutoff and the re-optimised one.
//
// Run with:
//
//	go run ./examples/cutofftuning
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	epochs := []struct {
		name  string
		theta float64
	}{
		{"morning rush (θ=1.40)", 1.40},
		{"midday (θ=0.80)", 0.80},
		{"evening long-tail (θ=0.30)", 0.30},
	}

	base := hybridqos.PaperConfig()
	base.Alpha = 0.5
	base.Horizon = 10000
	base.Replications = 2

	staleK := 40 // whatever yesterday's tuning left behind
	fmt.Println("adaptive cutoff tuning across popularity-drift epochs")
	fmt.Println()

	for _, epoch := range epochs {
		cfg := base
		cfg.Theta = epoch.theta

		// Step 1: model-based re-optimisation (cheap).
		pred, err := hybridqos.PredictOptimalCutoff(cfg, 5, 95)
		if err != nil {
			log.Fatal(err)
		}

		// Step 2: validate stale-vs-tuned by simulation.
		cfg.Cutoff = staleK
		stale, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Cutoff = pred.Cutoff
		tuned, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s\n", epoch.name)
		fmt.Printf("  model suggests K=%d (predicted cost %.1f)\n", pred.Cutoff, pred.TotalCost)
		fmt.Printf("  stale K=%d: measured cost %.1f | tuned K=%d: measured cost %.1f",
			staleK, stale.TotalCost, pred.Cutoff, tuned.TotalCost)
		if tuned.TotalCost <= stale.TotalCost {
			fmt.Printf("  (%.1f%% saved)\n", 100*(stale.TotalCost-tuned.TotalCost)/stale.TotalCost)
		} else {
			fmt.Printf("  (stale was already near-optimal)\n")
		}
		fmt.Println()

		staleK = pred.Cutoff // carry the tuned cutoff into the next epoch
	}

	fmt.Println("re-optimising K as skew drifts keeps the push set matched to the hot")
	fmt.Println("set: high skew wants a small broadcast cycle, flat demand a large one.")
}
