// Policies: tour the pluggable scheduling-policy layer. The same workload
// runs under several pull policies and push schedulers selected purely by
// name — the engine resolves them through the policy registry, so swapping a
// policy is a one-string change (or a -policy flag, or a JSON config field).
//
// Run with:
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"strings"

	"hybridqos"
)

func main() {
	// The registry self-reports its contents; externally registered
	// policies (see internal/policy.RegisterPull) would show up here too.
	fmt.Printf("pull policies:    %s\n", strings.Join(hybridqos.PullPolicies(), ", "))
	fmt.Printf("push schedulers:  %s\n\n", strings.Join(hybridqos.PushSchedulers(), ", "))

	base := hybridqos.PaperConfig()
	base.Horizon = 8000
	base.Replications = 2

	// Pull-side ablation: the paper's γ(α) against its two degenerate cases
	// and two classics. Class-A is the premium class; a class-aware policy
	// should buy it a visibly lower delay than class-blind FCFS.
	fmt.Println("pull policy ablation (K=40, α=0.5):")
	for _, name := range []string{
		hybridqos.PolicyGamma,
		hybridqos.PolicyStretch,
		hybridqos.PolicyPriority,
		hybridqos.PolicyFCFS,
		hybridqos.PolicyEDF,
	} {
		cfg := base
		cfg.PullPolicy = name
		res, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s Class-A %6.1f   Class-C %6.1f   overall %6.1f\n",
			name, res.PerClass[0].MeanDelay, res.PerClass[2].MeanDelay, res.OverallDelay)
	}

	// Push-side ablation, including "none": the engine routes every request
	// through the pull queue, turning the hybrid into a pure on-demand
	// server without touching the cutoff.
	fmt.Println("\npush scheduler ablation (γ pull):")
	for _, name := range []string{
		hybridqos.PushRoundRobin,
		hybridqos.PushBroadcastDisk,
		hybridqos.PushNone,
	} {
		cfg := base
		cfg.PushScheduler = name
		if name == hybridqos.PushBroadcastDisk {
			cfg.PushDisks = 4 // steeper speed tiers than the default 3
		}
		res, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s overall %6.1f   push broadcasts %5d   pull transmissions %5d\n",
			name, res.OverallDelay, res.PushBroadcasts, res.PullTransmissions)
	}

	// Deadline-aware pull: with a TTL every request carries a deadline and
	// EDF serves the most urgent pending item first; requests that miss
	// their deadline are counted as expired instead of served.
	cfg := base
	cfg.PullPolicy = hybridqos.PolicyEDF
	cfg.RequestTTL = 120
	res, err := hybridqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var expired int64
	for _, c := range res.PerClass {
		expired += c.Expired
	}
	fmt.Printf("\nEDF with TTL=120: overall delay %.1f, %d requests expired\n",
		res.OverallDelay, expired)
}
