// Quickstart: simulate the paper's default wireless cell and print
// per-class access times.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	// PaperConfig is the ICPP'05 simulation setup: 100 items with Zipf(0.6)
	// popularity, λ' = 5 requests per broadcast unit, three client classes
	// (A > B > C priority), cutoff K = 40, α = 0.5.
	cfg := hybridqos.PaperConfig()

	result, err := hybridqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid scheduler, K=%d, α=%.2f (%d replications)\n\n",
		result.Cutoff, result.Alpha, result.Replications)
	for _, c := range result.PerClass {
		fmt.Printf("%s (weight %.0f): mean delay %.1f ± %.1f broadcast units, cost %.1f\n",
			c.Class, c.Weight, c.MeanDelay, c.DelayCI95, c.Cost)
	}
	fmt.Printf("\noverall delay %.1f, total prioritised cost %.1f\n",
		result.OverallDelay, result.TotalCost)

	// The analytic model predicts the same quantities without simulating.
	pred, err := hybridqos.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := hybridqos.DeviationFromPrediction(result, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic prediction: overall %.1f (worst per-class deviation %.1f%%)\n",
		pred.OverallDelay, dev*100)
}
