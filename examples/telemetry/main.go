// Telemetry: watch a faulty, overloaded cell through the deterministic
// telemetry layer. The run records per-class counters, delay histograms and
// queue gauges, snapshots them into the event trace every 500 broadcast
// units, and delivers each snapshot live in the Prometheus text format — the
// same stream `hybridsim -telemetry-addr` serves on /metrics. Afterwards the
// trace is lowered to timeline artefacts (CSV + SVG), but only after every
// snapshot has been reproduced bit-for-bit by an independent replay of the
// trace's events: the collectors are audited, not trusted.
//
// Run with:
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"hybridqos"
)

func main() {
	cfg := hybridqos.PaperConfig()
	cfg.Horizon = 8000
	cfg.Lambda = 8 // overload: ~60% above the paper's operating point
	cfg.Replications = 1
	cfg.Faults = &hybridqos.FaultsConfig{
		LossProb:   0.15,
		MeanBurst:  4,
		MaxRetries: 2,
		ShedHigh:   300,
		ShedLow:    220,
	}

	fmt.Println("An overloaded cell (λ=8) on a bursty lossy downlink, telemetry on:")
	fmt.Println("snapshot every 500 broadcast units, live Prometheus exposition below.")
	fmt.Println()

	var snapshots int
	var lastProm string
	cfg.Telemetry = &hybridqos.TelemetryConfig{
		SnapshotEvery: 500,
		OnSnapshot: func(simTime float64, prom []byte) {
			snapshots++
			lastProm = string(prom)
		},
	}

	dir, err := os.MkdirTemp("", "hybridqos-telemetry")
	if err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.jsonl")
	events, err := hybridqos.WriteTrace(cfg, tracePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d events, %d live snapshots delivered to the OnSnapshot hook\n", events, snapshots)
	fmt.Println("final exposition (what a /metrics scrape would see at the end):")
	for _, line := range strings.Split(lastProm, "\n") {
		if strings.HasPrefix(line, "hybridqos_sim_time") ||
			strings.HasPrefix(line, "hybridqos_arrivals_total") ||
			strings.HasPrefix(line, "hybridqos_shed_total") ||
			strings.HasPrefix(line, "hybridqos_queue_requests ") {
			fmt.Println("  " + line)
		}
	}
	fmt.Println()

	a, err := hybridqos.ExportTimeline(tracePath, filepath.Join(dir, "timeline"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot audit: all %d embedded snapshots reproduced exactly by event replay\n", a.Snapshots)
	fmt.Printf("timeline: %d ticks x %d classes\n", a.Ticks, a.Classes)
	for _, p := range []string{a.CSV, a.DelaySVG, a.QueueSVG} {
		fmt.Println("  " + p)
	}
	fmt.Println()
	fmt.Println("The delay chart shows what the end-of-run means hide: Class-A's windowed")
	fmt.Println("p95 stays low while Class-C's climbs as shedding kicks in — the telemetry")
	fmt.Println("layer sees the QoS separation happen, not just its average.")
}
