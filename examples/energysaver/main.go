// Energysaver: (1, m) air indexing on the push channel — the
// battery-lifetime side of wireless data broadcast. Hand-held clients of
// the paper's era could not afford to listen to the whole broadcast cycle;
// interleaving m index segments lets them doze and wake only for one index
// and their item. The example sweeps m, shows the access-vs-tuning
// trade-off, and applies the classic m* = sqrt(Data/IndexLen) rule.
//
// Run with:
//
//	go run ./examples/energysaver
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	cfg := hybridqos.PaperConfig()
	cfg.Cutoff = 40 // index the 40-item push cycle
	const indexLen = 0.5

	fmt.Println("(1,m) air indexing on the 40-item push cycle (index segment = 0.5 units)")
	fmt.Println()
	fmt.Printf("%-6s %-14s %-14s %s\n", "m", "access time", "tuning time", "doze fraction")
	sweep, err := hybridqos.SweepIndexing(cfg, indexLen, 40)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range sweep {
		if p.M == 1 || p.M%6 == 0 || p.M == 40 {
			fmt.Printf("%-6d %-14.1f %-14.2f %.1f%%\n",
				p.M, p.AccessTime, p.TuningTime, p.DozeFraction*100)
		}
	}

	best, err := hybridqos.PlanIndexing(cfg, indexLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("access-optimal index count m* = %d (classic rule: sqrt(Data/IndexLen))\n", best.M)
	fmt.Printf("  access %.1f units, tuning %.2f units — the receiver dozes through\n",
		best.AccessTime, best.TuningTime)
	fmt.Printf("  %.1f%% of its wait.\n", best.DozeFraction*100)
	fmt.Println()
	fmt.Printf("against the naive single index (m=1: access %.1f units), m*=%d cuts the\n",
		sweep[0].AccessTime, best.M)
	fmt.Println("access time by distributing index replicas through the cycle; against an")
	fmt.Println("unindexed broadcast, it trades a small access premium (the client must")
	fmt.Println("pass through an index) for a ~20x cut in receiver-on time — the battery")
	fmt.Println("currency of the paper's hand-held clients.")
}
