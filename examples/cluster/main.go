// Cluster: a metropolitan federation of broadcast cells with roaming
// clients. Eight cells each run the paper's hybrid scheduler over their own
// catalog (80% global content, 20% cell-local); a stadium cell carries four
// times the load; clients roam between cells mid-request, re-attaching
// after a transit delay with their service class and deadline budget
// intact. Cross-cell routing spreads the roamers to the least-loaded
// neighbour, and the cluster-level saturation detector watches each cell's
// backlog.
//
// The run demonstrates the cluster invariants: per-class differentiation
// (Class-A fastest) survives federation and mobility, every roamer is
// accounted for (accepted somewhere or refused with a reason), and the hot
// cell — not its neighbours — trips the saturation detector.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	cfg := hybridqos.PaperConfig()
	cfg.Horizon = 4000
	cfg.Cluster = &hybridqos.ClusterOptions{
		Cells:            8,
		CatalogOverlap:   0.8,
		MobilityRate:     0.03,
		AttachDelay:      2,
		Routing:          "least-loaded",
		HandoffEvery:     100,
		HotCell:          3,
		HotFactor:        4,
		SaturationLoad:   800,
		SaturationEpochs: 2,
	}

	res, err := hybridqos.SimulateCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federation: %d cells, %d of %d catalog ranks global, routing %q\n\n",
		res.Cells, res.SharedRanks, cfg.NumItems, cfg.Cluster.Routing)

	fmt.Println("per-class QoS pooled across the federation:")
	for _, c := range res.PerClass {
		fmt.Printf("  %s (weight %.0f): mean delay %7.2f, p95 %7.2f, served %6d\n",
			c.Class, c.Weight, c.MeanDelay, c.P95Delay, c.Served)
	}
	fmt.Printf("overall delay %.2f, total prioritised cost %.2f\n\n",
		res.OverallDelay, res.TotalCost)

	fmt.Println("per-cell view (cell 3 is the stadium, 4x load):")
	for _, pc := range res.PerCell {
		sat := ""
		if pc.Saturated {
			sat = fmt.Sprintf("  SATURATED at t=%.0f", pc.SaturatedAt)
		}
		fmt.Printf("  cell %d: delay %7.2f, served %6d, roamed in %5d / out %5d, refused %4d%s\n",
			pc.Cell, pc.OverallDelay, pc.Served, pc.HandoffsIn, pc.HandoffsOut,
			pc.HandoffRefusals, sat)
	}

	fmt.Printf("\nroaming: %d handoffs accepted, %d refused (deadline, admission or missing cell-local content)\n",
		res.Handoffs, res.HandoffRefusals)
	fmt.Printf("saturated cells: %d of %d\n", res.SaturatedCells, res.Cells)
}
