// Adaptivecell: the full closed loop — a cell whose popularity drifts while
// an online controller watches the request stream, re-fits the workload
// (Zipf skew by maximum likelihood, arrival rate) every epoch, and re-plans
// the cutoff with the analytic model. This is the paper's "periodically the
// algorithm is executed … and obtains the optimal cutoff-point" realised as
// an actual component instead of an offline sweep.
//
// Pipeline: simulate a drifting cell once with event tracing → feed the
// traced arrivals to the AdaptiveController → inspect the plans it adopted.
//
// Run with:
//
//	go run ./examples/adaptivecell
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hybridqos"
)

func main() {
	cfg := hybridqos.PaperConfig()
	cfg.Theta = 1.2 // strongly skewed demand ...
	cfg.Rotation = &hybridqos.RotationConfig{Period: 4000, Shift: 20}
	cfg.Cutoff = 40 // ... but a stale, too-large push set
	cfg.Horizon = 24000
	cfg.Replications = 1

	tracePath := filepath.Join(os.TempDir(), "adaptivecell-trace.jsonl")
	defer os.Remove(tracePath)

	n, err := hybridqos.WriteTrace(cfg, tracePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated a drifting cell (θ=1.2, ranking rotates every 4000 units): %d events\n\n", n)

	times, ranks, err := hybridqos.ReadTraceArrivals(tracePath)
	if err != nil {
		log.Fatal(err)
	}

	ctl, err := hybridqos.NewAdaptiveController(cfg, 4000)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ranks {
		ctl.Observe(ranks[i], times[i])
	}

	fmt.Println("controller plans (one per epoch):")
	fmt.Printf("%-8s %-10s %-10s %-14s\n", "epoch", "fitted θ", "fitted λ", "planned K")
	for i, p := range ctl.Plans() {
		fmt.Printf("%-8d %-10.2f %-10.2f %-14d\n", i+1, p.Theta, p.Lambda, p.Cutoff)
	}

	fmt.Println()
	fmt.Printf("stale cutoff was K=40; the controller converged on K=%d —\n", ctl.Cutoff())
	fmt.Println("the MLE skew fit is permutation-invariant, so the rotating hot set")
	fmt.Println("does not confuse it: it keeps recommending a small push window")
	fmt.Println("matched to the true concentration of demand. The recommended push")
	fmt.Println("CONTENT comes from the fitted ranking (the plan's empirical order),")
	fmt.Println("which the operator applies when regenerating the broadcast program.")
}
