// Premiumtrading: bandwidth partitioning and blocking for a mobile trading
// service — the abstract's claim that "the number of requests dropped [can
// be minimised] by assigning appropriate fraction of available bandwidth".
//
// A brokerage pushes the hottest quote pages and serves the tail on demand
// under a tight downlink budget. Each transmission's bandwidth need is
// stochastic (Poisson in the item length); when the governing tier's pool
// cannot cover it, the item and its pending requests are dropped. The
// example sweeps the premium tier's bandwidth share and reports per-tier
// drop rates, showing how to size the premium pool so that Class-A blocking
// is (near) zero.
//
// Run with:
//
//	go run ./examples/premiumtrading
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	base := hybridqos.PaperConfig()
	base.Theta = 0.6
	base.Cutoff = 50
	base.Alpha = 0.25
	base.Horizon = 15000
	base.Replications = 3

	fmt.Println("mobile trading cell under a tight downlink budget (8 bandwidth units)")
	fmt.Println()
	fmt.Printf("%-8s  %-10s  %-10s  %-10s  %s\n",
		"A-share", "A drops", "B drops", "C drops", "premium delay")

	type row struct {
		frac  float64
		aDrop float64
	}
	var rows []row
	for _, fracA := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		cfg := base
		rest := (1 - fracA) / 2
		cfg.Bandwidth = &hybridqos.BandwidthConfig{
			Total:      8,
			Fractions:  []float64{fracA, rest, rest},
			DemandMean: 1.5,
		}
		res, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f  %-10.4f  %-10.4f  %-10.4f  %.1f units\n",
			fracA,
			res.PerClass[0].DropRate,
			res.PerClass[1].DropRate,
			res.PerClass[2].DropRate,
			res.PerClass[0].MeanDelay)
		rows = append(rows, row{fracA, res.PerClass[0].DropRate})
	}

	fmt.Println()
	best := rows[0]
	for _, r := range rows[1:] {
		if r.aDrop < best.aDrop {
			best = r
		}
	}
	fmt.Printf("premium blocking is minimised at an A-share of %.2f (drop rate %.4f):\n",
		best.frac, best.aDrop)
	fmt.Println("growing the premium pool trades free-tier drops for premium availability —")
	fmt.Println("the provider picks the point where premium blocking meets its SLA.")

	// Borrow mode (an extension beyond the paper) lets the premium tier
	// spill into idle lower-tier bandwidth instead of blocking.
	cfg := base
	cfg.Bandwidth = &hybridqos.BandwidthConfig{
		Total:       8,
		Fractions:   []float64{0.2, 0.4, 0.4},
		DemandMean:  1.5,
		AllowBorrow: true,
	}
	res, err := hybridqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith borrow mode at a 0.20 A-share, the premium drop rate is %.4f —\n",
		res.PerClass[0].DropRate)
	fmt.Println("overflow into idle lower-priority pools substitutes for over-provisioning.")
}
