// Multitier: five service classes instead of the paper's three — the
// "Effect of Multiple Service Classes" analysis (§4.2.2) exercised
// end-to-end. An operator with Diamond/Platinum/Gold/Silver/Free tiers
// checks that the importance-factor scheduler layers all five tiers, and
// prices each tier from its measured delay.
//
// Run with:
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	cfg := hybridqos.PaperConfig()
	cfg.ClassWeights = []float64{5, 4, 3, 2, 1} // five strictly decreasing tiers
	cfg.Cutoff = 50
	cfg.Alpha = 0.1 // strong priority influence
	cfg.Horizon = 15000
	cfg.Replications = 3

	res, err := hybridqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tiers := []string{"diamond", "platinum", "gold", "silver", "free"}
	fmt.Println("five-tier wireless data cell (α=0.10, K=50, θ=0.60)")
	fmt.Println()
	fmt.Printf("%-10s %-8s %-14s %-12s %s\n", "tier", "weight", "mean delay", "p95 delay", "prioritised cost")
	prev := 0.0
	layered := true
	for i, tier := range tiers {
		c := res.PerClass[i]
		fmt.Printf("%-10s %-8.0f %-14.1f %-12.1f %.1f\n",
			tier, c.Weight, c.MeanDelay, c.P95Delay, c.Cost)
		if i > 0 && c.MeanDelay < prev {
			layered = false
		}
		prev = c.MeanDelay
	}
	fmt.Println()
	if layered {
		fmt.Println("all five tiers are strictly layered: each broader (cheaper) tier")
		fmt.Println("waits longer than the tier above it — the multi-class Cobham")
		fmt.Println("behaviour of §4.2.2, realised by the single γ selection rule.")
	} else {
		fmt.Println("warning: tier layering violated at this horizon; increase Horizon")
	}

	// The same system with α=1 for contrast: tiers collapse.
	cfg.Alpha = 1
	flat, err := hybridqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	spread := func(r *hybridqos.Result) float64 {
		return r.PerClass[len(r.PerClass)-1].MeanDelay - r.PerClass[0].MeanDelay
	}
	fmt.Printf("\ntop-to-bottom delay spread: %.1f units at α=0.1 vs %.1f at α=1\n",
		spread(res), spread(flat))
}
