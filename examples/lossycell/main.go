// Lossycell: a wireless cell whose downlink fades in bursts — the
// Gilbert–Elliott channel the paper's error-free assumption hides. Clients
// re-request corrupted pull deliveries with exponential backoff, and the
// server's class-aware admission controller sheds Class-C under the
// resulting overload. The point of the exercise: even when the channel
// itself fails, service classification keeps the premium class whole —
// Class-A's delay and failure rate stay nearly flat across loss levels
// while Class-C absorbs the damage.
//
// Run with:
//
//	go run ./examples/lossycell
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	fmt.Println("A bursty cell: Gilbert–Elliott loss (mean burst 5 transmissions),")
	fmt.Println("3 client retries with doubling backoff, shedding at 260/200 pending requests.")
	fmt.Println()
	fmt.Printf("%8s  %18s %18s %14s %14s %12s\n",
		"loss", "A delay (fail%)", "C delay (fail%)", "corrupted", "retries", "C shed")

	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		cfg := hybridqos.PaperConfig()
		cfg.Horizon = 10000
		cfg.Faults = &hybridqos.FaultsConfig{
			LossProb:    loss,
			MeanBurst:   5,
			MaxRetries:  3,
			RetryJitter: 0.5,
			ShedHigh:    260,
			ShedLow:     200,
		}
		res, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		a, c := res.PerClass[0], res.PerClass[2]
		var retries int64
		for _, pc := range res.PerClass {
			retries += pc.Retries
		}
		fmt.Printf("%8.0f%%  %10.1f (%4.1f%%) %10.1f (%4.1f%%) %14d %14d %12d\n",
			loss*100,
			a.MeanDelay, a.FailureRate*100,
			c.MeanDelay, c.FailureRate*100,
			res.CorruptedPushes+res.CorruptedPulls, retries, c.Shed)
	}

	fmt.Println()
	fmt.Println("Class-A rides out the bursts: its requests are never shed and its")
	fmt.Println("retries win the queue back, so its failure rate stays near zero while")
	fmt.Println("Class-C — shed first at the high-water mark — pays for the channel.")
}
