// Newsfeed: a wireless news-dissemination cell — the workload class the
// paper's introduction motivates (SMS/i-mode-era broadcast data services).
//
// A metropolitan cell broadcasts 100 news items (headlines are short and
// wildly popular, long-form pieces rarer) to three subscriber tiers:
// platinum (Class-A), gold (Class-B) and free (Class-C). The example
// contrasts how the α knob — stretch-only scheduling (α=1, the operator
// ignores tiers) versus priority-aware scheduling (α=0.25) — changes what
// each tier experiences, and shows the churn argument from the paper: the
// premium tier's delay drops sharply while the free tier pays only a mild
// penalty.
//
// Run with:
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"log"

	"hybridqos"
)

func main() {
	base := hybridqos.PaperConfig()
	base.Theta = 1.0 // news popularity is heavily skewed
	base.Cutoff = 30 // hot headlines broadcast continuously
	base.Horizon = 15000
	base.Replications = 3

	fmt.Println("metropolitan newsfeed cell: 100 items, Zipf(1.0), 3 subscriber tiers")
	fmt.Println()

	type outcome struct {
		alpha float64
		res   *hybridqos.Result
	}
	var outcomes []outcome
	for _, alpha := range []float64{1.0, 0.25} {
		cfg := base
		cfg.Alpha = alpha
		res, err := hybridqos.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{alpha, res})
	}

	tiers := []string{"platinum", "gold", "free"}
	fmt.Printf("%-10s  %-22s  %-22s\n", "tier", "α=1.0 (tier-blind)", "α=0.25 (tier-aware)")
	for i, tier := range tiers {
		blind := outcomes[0].res.PerClass[i]
		aware := outcomes[1].res.PerClass[i]
		fmt.Printf("%-10s  %6.1f units          %6.1f units (%+.1f%%)\n",
			tier, blind.MeanDelay, aware.MeanDelay,
			100*(aware.MeanDelay-blind.MeanDelay)/blind.MeanDelay)
	}
	fmt.Println()

	blindCost := outcomes[0].res.TotalCost
	awareCost := outcomes[1].res.TotalCost
	fmt.Printf("total prioritised cost: %.1f (tier-blind) vs %.1f (tier-aware), %.1f%% lower\n",
		blindCost, awareCost, 100*(blindCost-awareCost)/blindCost)
	fmt.Println("\nthe paper's churn argument: the platinum tier — the clients whose")
	fmt.Println("defection hurts most — sees the largest improvement when the pull")
	fmt.Println("scheduler weighs client priority into the importance factor.")
}
