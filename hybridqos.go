// Package hybridqos is a library for differentiated-QoS data broadcasting in
// asymmetric wireless networks. It reproduces the hybrid push/pull scheduler
// with priority-based service classification of Saxena, Basu, Das and
// Pinotti, "A New Service Classification Strategy in Hybrid Scheduling to
// Support Differentiated QoS in Wireless Data Networks" (ICPP 2005):
//
//   - a server database of D variable-length items with Zipf(θ) popularity;
//   - a cutoff K splitting the catalog into a flat-broadcast push set (the K
//     hottest items) and an on-demand pull set;
//   - client service classes (Class-A highest priority) with Zipf-skewed
//     populations;
//   - pull selection by the importance factor γ_i = α·S_i + (1−α)·Q_i, where
//     S_i = R_i/L_i² is the stretch and Q_i the summed priority of the item's
//     pending requesters;
//   - per-class bandwidth pools with Poisson demand and blocking;
//   - cutoff-point optimisation minimising delay or total prioritised cost.
//
// The package front-ends a deterministic discrete-event simulator and the
// paper's queueing-analytic models. Entry points: Simulate (replicated
// simulation), Predict (analytic model), OptimizeCutoff (simulation-based
// sweep) and PredictOptimalCutoff (model-based sweep).
package hybridqos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"hybridqos/internal/adaptive"
	"hybridqos/internal/airindex"
	"hybridqos/internal/analytic"
	"hybridqos/internal/bandwidth"
	"hybridqos/internal/cache"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/faults"
	"hybridqos/internal/policy"
	"hybridqos/internal/rng"
	"hybridqos/internal/sim"
	"hybridqos/internal/span"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
	"hybridqos/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Pull policy names accepted by Config.PullPolicy. These are the canonical
// names of the internal policy registry; PullPolicies() lists them at run
// time, including externally registered ones.
const (
	PolicyGamma            = "gamma" // paper's γ(α) importance factor (default)
	PolicyImportanceFactor = "importance-factor"
	PolicyStretch          = "stretch"  // α=1 special case
	PolicyPriority         = "priority" // α=0 special case
	PolicyFCFS             = "fcfs"     // oldest pending request first
	PolicyEDF              = "edf"      // earliest deadline (RequestTTL) first
	PolicyMRF              = "mrf"      // most requests first
	PolicyRxW              = "rxw"      // requests × wait
	PolicyClassicStretch   = "classic-stretch"
)

// Push scheduler names accepted by Config.PushScheduler. PushSchedulers()
// lists the registry at run time.
const (
	PushRoundRobin    = "roundrobin" // paper's flat cycle (default)
	PushFlat          = "flat"       // alias of roundrobin
	PushBroadcastDisk = "broadcast-disk"
	PushSquareRoot    = "square-root"
	PushNone          = "none" // pure pull: no broadcast channel
)

// PullPolicies returns the sorted canonical pull-policy names the registry
// currently knows (built-ins plus any externally registered policies).
func PullPolicies() []string { return policy.PullNames() }

// PushSchedulers returns the sorted canonical push-scheduler names.
func PushSchedulers() []string { return policy.PushNames() }

// BandwidthConfig enables the per-class bandwidth pools and blocking.
type BandwidthConfig struct {
	// Total downlink bandwidth units.
	Total float64
	// Fractions is each class's share (must sum to 1), Class-A first.
	Fractions []float64
	// DemandMean scales the Poisson per-transmission bandwidth demand.
	DemandMean float64
	// AllowBorrow lets a class spill into LOWER-priority pools (extension).
	AllowBorrow bool
}

// Config describes a complete system. The zero value is not valid; start
// from PaperConfig and adjust.
type Config struct {
	// NumItems is the catalog size D.
	NumItems int
	// Theta is the Zipf access skew (paper sweeps 0.20–1.40).
	Theta float64
	// Lambda is the aggregate Poisson request rate per broadcast unit.
	Lambda float64
	// Cutoff is K: items 1..K pushed, the rest pulled.
	Cutoff int
	// Alpha mixes stretch (α=1) and priority (α=0) in the pull selection.
	Alpha float64
	// ClassWeights are the per-class priorities, highest class first and
	// strictly decreasing (paper: 3,2,1).
	ClassWeights []float64
	// PopulationSkew is the Zipf θ of the client-class split (fewest
	// premium clients). 0 = uniform.
	PopulationSkew float64
	// Bandwidth, when non-nil, enables blocking.
	Bandwidth *BandwidthConfig
	// PullPolicy selects the pull scheduler by name from the policy
	// registry; empty means the paper's importance factor at Alpha. See
	// PullPolicies for the known names.
	PullPolicy string
	// PushScheduler selects the push scheduler by name; empty means the
	// paper's flat round-robin, "none" disables pushing entirely (pure
	// pull). See PushSchedulers for the known names.
	PushScheduler string
	// PushDisks is the number of speed tiers for the "broadcast-disk" push
	// scheduler; 0 means 3. Ignored by the other push schedulers.
	PushDisks int
	// Horizon is the simulated duration per replication (broadcast units).
	Horizon float64
	// WarmupFraction of the horizon is discarded from statistics.
	WarmupFraction float64
	// Replications is the number of independent runs aggregated by
	// Simulate; 0 means 1.
	Replications int
	// Seed is the base random seed; replication r uses Seed+r.
	Seed uint64
	// DelayHistBound, when positive, caps each per-class delay histogram at
	// that many retained samples per replication (a deterministic systematic
	// reservoir), so long-horizon runs use constant memory. Percentiles
	// (Result.P95Delay) become estimates over at least DelayHistBound/2
	// samples; 0 keeps the exact unbounded histograms. Must be 0 or >= 2.
	DelayHistBound int
	// Rotation, when non-nil, makes item popularity drift: every Period
	// broadcast units the popularity ranking rotates by Shift positions
	// while the push set stays put — the mismatch adaptive cutoff tuning
	// corrects.
	Rotation *RotationConfig
	// RequestTTL, when positive, gives every request a deadline; requests
	// served later than arrival+TTL count as expired, not served.
	RequestTTL float64
	// Uplink, when non-nil, rate-limits the request back-channel: pull
	// requests beyond the token-bucket budget are lost before reaching the
	// server.
	Uplink *UplinkConfig
	// ClientCache, when non-nil, gives every client a broadcast-disk-style
	// item cache; hits cost zero access time.
	ClientCache *ClientCacheConfig
	// Faults, when non-nil, enables the failure model: a lossy downlink
	// (i.i.d. or bursty), client retry with exponential backoff, and
	// class-aware overload shedding. Nil keeps the paper's error-free
	// channel; a zero-valued FaultsConfig is equivalent to nil.
	Faults *FaultsConfig
	// Telemetry, when non-nil, enables the deterministic telemetry layer on
	// replication 0: per-class counters, delay histograms and queue/bandwidth
	// gauges, snapshotted into the trace every SnapshotEvery broadcast units.
	// Telemetry never perturbs results — a run with it enabled is
	// bit-identical to the same run without it.
	Telemetry *TelemetryConfig
	// Cluster, when non-nil, federates the system into a multi-cell cluster
	// with client mobility and cross-cell routing; SimulateCluster runs it
	// (Simulate ignores this field).
	Cluster *ClusterOptions
	// Spans, when non-nil, enables deterministic per-request span tracing:
	// head-sampled request lifecycles with scheduler decision provenance,
	// reconstructable into span trees (WriteSpans, cmd/traceinfo -spans).
	// The sampling draws come from a dedicated RNG stream, so a spans-off
	// run is bit-identical to one without this field and a spans-on run is
	// trajectory-identical (same draws and metrics, extra trace events).
	Spans *SpanTraceConfig
}

// SpanTraceConfig parameterises per-request span tracing (Config.Spans).
type SpanTraceConfig struct {
	// Rates are the per-class head-sampling probabilities in [0,1],
	// Class-A first; classes beyond the slice (or an empty slice) sample
	// at rate 1. The decision is made once, at arrival, from a dedicated
	// deterministic stream.
	Rates []float64
	// Exemplars, with Config.Telemetry also set, keeps up to this many
	// exemplar span IDs per (class, delay bucket) in the telemetry
	// collector, chosen by a deterministic reservoir — the bridge from an
	// aggregate latency bucket back to concrete traced requests. 0
	// disables exemplars.
	Exemplars int
}

// TelemetryConfig parameterises the telemetry layer (see Config.Telemetry).
type TelemetryConfig struct {
	// SnapshotEvery is the snapshot cadence in broadcast units (must be
	// positive): every SnapshotEvery units of simulated time the collector's
	// full state — counters, histograms, gauges — is embedded in the trace as
	// a trace.KindSnapshot event and handed to OnSnapshot.
	SnapshotEvery float64
	// OnSnapshot, when non-nil, receives every snapshot as it is taken,
	// rendered in the Prometheus text exposition format, with the simulated
	// time it was taken at. It is called synchronously from the simulation
	// loop of replication 0; keep it fast. The field does not survive
	// SaveConfig/LoadConfig.
	OnSnapshot func(simTime float64, prom []byte) `json:"-"`
}

// newCollector builds a fresh per-run collector (collectors are stateful;
// one is created per traced replication). exemplars > 0 additionally arms
// exemplar span-ID sampling with a reservoir stream derived from seed.
func (tc *TelemetryConfig) newCollector(exemplars int, seed uint64) (*telemetry.Collector, error) {
	if tc.SnapshotEvery <= 0 || math.IsNaN(tc.SnapshotEvery) || math.IsInf(tc.SnapshotEvery, 0) {
		return nil, fmt.Errorf("hybridqos: telemetry snapshot cadence %g, want positive", tc.SnapshotEvery)
	}
	opts := telemetry.Options{SnapshotEvery: tc.SnapshotEvery}
	if exemplars > 0 {
		opts.Exemplars = exemplars
		opts.ExemplarRNG = rng.New(seed).Split("exemplars")
	}
	if hook := tc.OnSnapshot; hook != nil {
		opts.OnSnapshot = func(s *telemetry.Snapshot) {
			var buf bytes.Buffer
			if err := telemetry.WriteProm(&buf, s); err == nil {
				hook(s.T, buf.Bytes())
			}
		}
	}
	return telemetry.New(opts)
}

// exemplarCount returns the configured exemplar reservoir size, 0 when
// span tracing or telemetry is off.
func (c Config) exemplarCount() int {
	if c.Spans == nil || c.Telemetry == nil {
		return 0
	}
	return c.Spans.Exemplars
}

// FaultsConfig parameterises the failure model: downlink loss, client
// retries and server-side admission shedding. Any of the three parts may be
// enabled independently.
type FaultsConfig struct {
	// LossProb is the mean downlink corruption probability in [0,1); 0
	// disables loss.
	LossProb float64
	// MeanBurst, when ≥ 1, makes corruption bursty: a Gilbert–Elliott chain
	// whose loss bursts average MeanBurst consecutive transmissions, with
	// stationary loss LossProb. 0 selects i.i.d. Bernoulli loss.
	MeanBurst float64
	// MaxRetries is the number of client re-requests allowed after corrupted
	// pull deliveries; 0 disables retries (a corrupted delivery fails
	// immediately).
	MaxRetries int
	// RetryBackoff is the backoff before the first re-request in broadcast
	// units (default 1 when retries are enabled).
	RetryBackoff float64
	// BackoffMultiplier grows the backoff per attempt (default 2).
	BackoffMultiplier float64
	// MaxBackoff, when positive, caps the un-jittered backoff.
	MaxBackoff float64
	// RetryJitter in [0,1] spreads each backoff uniformly over
	// [1−J/2, 1+J/2] times its nominal value.
	RetryJitter float64
	// ShedHigh, when positive, enables class-aware overload shedding: at
	// ShedHigh pending pull requests (queued plus awaiting retry) the server
	// refuses lowest-class requests, restoring admission at ShedLow
	// (hysteresis; ShedLow < ShedHigh).
	ShedHigh int
	// ShedLow is the low-water mark (≥ 0).
	ShedLow int
	// MaxShedClasses bounds how many of the lowest classes can be shed at
	// once; 0 means only the bottom class. Class-A is never shed.
	MaxShedClasses int
}

// lossModel constructs a fresh loss model, nil when loss is disabled. Loss
// models are stateful and must be built once per replication.
func (f *FaultsConfig) lossModel() (faults.LossModel, error) {
	if f.LossProb == 0 && f.MeanBurst == 0 {
		return nil, nil
	}
	if f.MeanBurst > 0 {
		return faults.NewBurstLoss(f.LossProb, f.MeanBurst)
	}
	return faults.NewBernoulli(f.LossProb)
}

// retryPolicy lowers the retry fields, applying defaults.
func (f *FaultsConfig) retryPolicy() faults.RetryPolicy {
	if f.MaxRetries <= 0 {
		return faults.RetryPolicy{}
	}
	p := faults.RetryPolicy{
		MaxAttempts: f.MaxRetries,
		Base:        f.RetryBackoff,
		Multiplier:  f.BackoffMultiplier,
		Max:         f.MaxBackoff,
		Jitter:      f.RetryJitter,
	}
	if p.Base == 0 {
		p.Base = 1
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	return p
}

// ClientCacheConfig parameterises client-side caching.
type ClientCacheConfig struct {
	// NumClients is the cache population size.
	NumClients int
	// Capacity is each client's cache size in items.
	Capacity int
	// Policy is "lru", "lfu" or "pix" (empty = "pix", the broadcast-disk
	// policy).
	Policy string
}

// UplinkConfig parameterises the token-bucket request back-channel.
type UplinkConfig struct {
	// Rate is the sustained request rate the uplink admits per broadcast
	// unit.
	Rate float64
	// Burst is the burst allowance (≥ 1).
	Burst float64
}

// RotationConfig parameterises popularity drift (see Config.Rotation).
type RotationConfig struct {
	// Period is the rotation interval in broadcast units.
	Period float64
	// Shift is how many rank positions rotate per period.
	Shift int
}

// PaperConfig returns the paper's simulation setup (section 5.1): D = 100
// items with lengths 1..5 (mean 2), λ′ = 5, three classes with priorities
// 3:2:1 and Zipf(1) population split, α = 0.5, θ = 0.6, K = 40.
func PaperConfig() Config {
	return Config{
		NumItems:       100,
		Theta:          0.6,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		ClassWeights:   []float64{3, 2, 1},
		PopulationSkew: 1.0,
		Horizon:        20000,
		WarmupFraction: 0.1,
		Replications:   3,
		Seed:           1,
	}
}

// build lowers the public Config to internal configuration.
func (c Config) build() (core.Config, error) {
	cat, err := catalog.Generate(catalog.Config{
		D:             c.NumItems,
		Theta:         c.Theta,
		MinLen:        1,
		MaxLen:        5,
		LengthWeights: catalog.PaperLengthWeights(),
		Seed:          c.Seed,
	})
	if err != nil {
		return core.Config{}, err
	}
	cl, err := clients.New(clients.Config{
		Weights:        c.ClassWeights,
		PopulationSkew: c.PopulationSkew,
	})
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         c.Lambda,
		Cutoff:         c.Cutoff,
		Alpha:          c.Alpha,
		Horizon:        c.Horizon,
		WarmupFraction: c.WarmupFraction,
		Seed:           c.Seed,
		DelayHistBound: c.DelayHistBound,
	}
	// Policy selection is by name only: the core engine resolves the names
	// through the policy registry, so externally registered policies work
	// here too. Unknown names surface as *policy.UnknownError from
	// cfg.Validate below.
	cfg.PullPolicyName = c.PullPolicy
	cfg.PushPolicyName = c.PushScheduler
	cfg.PushDisks = c.PushDisks
	if c.Bandwidth != nil {
		cfg.Bandwidth = &bandwidth.Config{
			Total:       c.Bandwidth.Total,
			Fractions:   c.Bandwidth.Fractions,
			DemandMean:  c.Bandwidth.DemandMean,
			AllowBorrow: c.Bandwidth.AllowBorrow,
		}
	}
	if c.Rotation != nil {
		rot, err := workload.NewRotatingPopularity(cat, c.Rotation.Period, c.Rotation.Shift)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Items = rot
	}
	if c.Uplink != nil {
		// Validate eagerly; per-run instances are created in perRun (a
		// token bucket is stateful and must not be shared across the
		// parallel replications).
		if _, err := uplink.NewTokenBucket(c.Uplink.Rate, c.Uplink.Burst); err != nil {
			return core.Config{}, err
		}
	}
	cfg.RequestTTL = c.RequestTTL
	if c.Faults != nil {
		// Validate the loss parameters eagerly; per-run instances are
		// created in perRun (the Gilbert–Elliott chain is stateful and must
		// not be shared across the parallel replications).
		if _, err := c.Faults.lossModel(); err != nil {
			return core.Config{}, err
		}
		if c.Faults.MaxRetries < 0 {
			return core.Config{}, fmt.Errorf("faults: retry count %d negative", c.Faults.MaxRetries)
		}
		cfg.Retry = c.Faults.retryPolicy()
		if c.Faults.ShedHigh > 0 {
			cfg.Shed = &faults.ShedConfig{
				High:           c.Faults.ShedHigh,
				Low:            c.Faults.ShedLow,
				MaxShedClasses: c.Faults.MaxShedClasses,
			}
		}
	}
	if c.Telemetry != nil {
		// Validate eagerly; the per-run collector is created in perRun (it is
		// stateful and attaches to replication 0 only).
		if _, err := c.Telemetry.newCollector(0, 0); err != nil {
			return core.Config{}, err
		}
	}
	if c.Spans != nil {
		if c.Spans.Exemplars < 0 {
			return core.Config{}, fmt.Errorf("hybridqos: negative span exemplar count %d", c.Spans.Exemplars)
		}
		cfg.Spans = &core.SpanConfig{Rates: append([]float64(nil), c.Spans.Rates...)}
	}
	if c.ClientCache != nil {
		cachePol, err := cachePolicyByName(c.ClientCache.Policy)
		if err != nil {
			return core.Config{}, err
		}
		cfg.ClientCache = &core.CacheConfig{
			NumClients: c.ClientCache.NumClients,
			Capacity:   c.ClientCache.Capacity,
			Policy:     cachePol,
		}
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

func cachePolicyByName(name string) (cache.PolicyKind, error) {
	switch name {
	case "", "pix":
		return cache.PIX, nil
	case "lru":
		return cache.LRU, nil
	case "lfu":
		return cache.LFU, nil
	default:
		return 0, fmt.Errorf("hybridqos: unknown cache policy %q", name)
	}
}

// ClassResult reports one service class's measured performance.
type ClassResult struct {
	// Class is the class label ("Class-A", ...).
	Class string
	// Weight is the class's priority weight.
	Weight float64
	// MeanDelay is the mean access time in broadcast units; DelayCI95 is
	// the half-width of its 95% confidence interval across replications
	// (NaN for a single replication).
	MeanDelay, DelayCI95 float64
	// P95Delay is the 95th-percentile access time, pooled over all served
	// requests across replications.
	P95Delay float64
	// Cost is the prioritised cost Weight·MeanDelay.
	Cost float64
	// DropRate is the fraction of requests lost to bandwidth blocking.
	DropRate float64
	// Served and Dropped are pooled request counts.
	Served, Dropped int64
	// Expired counts requests that missed their RequestTTL deadline.
	Expired int64
	// CacheHits counts requests served instantly from the client's cache.
	CacheHits int64
	// UplinkLost counts pull requests lost on the request back-channel.
	UplinkLost int64
	// Retries counts client re-requests after corrupted pull deliveries.
	Retries int64
	// Failed counts requests whose retry budget corruption exhausted.
	Failed int64
	// Shed counts requests refused by the overload admission controller.
	Shed int64
	// FailureRate is the mean per-replication fraction of completed requests
	// that ended in failure (drop, expiry, retry exhaustion or shedding).
	FailureRate float64
}

// Result reports one configuration's measured performance.
type Result struct {
	// Cutoff echoes K.
	Cutoff int
	// Alpha echoes α.
	Alpha float64
	// PerClass has one entry per class, Class-A first.
	PerClass []ClassResult
	// OverallDelay is the request-weighted mean access time; its CI is
	// across replications.
	OverallDelay, OverallDelayCI95 float64
	// TotalCost is Σ_c Weight_c·MeanDelay_c.
	TotalCost float64
	// PushBroadcasts, PullTransmissions and BlockedTransmissions are pooled
	// counts over all replications.
	PushBroadcasts, PullTransmissions, BlockedTransmissions int64
	// CorruptedPushes and CorruptedPulls count transmissions lost on the
	// lossy downlink — the gap between raw throughput and goodput.
	CorruptedPushes, CorruptedPulls int64
	// MeanQueueItems is the time-averaged number of distinct queued pull
	// items.
	MeanQueueItems float64
	// Replications is the number of runs aggregated.
	Replications int
}

// SetWorkers overrides the size of the shared deterministic work pool used
// by Simulate, OptimizeCutoff and the experiment sweeps, returning the
// previous override; n <= 0 restores automatic sizing (GOMAXPROCS−1, at
// least one). Results are bit-identical at any worker count, so this only
// trades wall-clock time against CPU use. The override is process-global.
func SetWorkers(n int) (prev int) { return sim.SetWorkers(n) }

// Workers reports the effective work-pool size.
func Workers() int { return sim.Workers() }

// Simulate runs the configured system (Replications independent runs in
// parallel) and aggregates the results.
func Simulate(c Config) (*Result, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	reps := c.Replications
	if reps <= 0 {
		reps = 1
	}
	summary, err := sim.RunReplicationsWith(cfg, reps, c.perRun())
	if err != nil {
		return nil, err
	}
	return resultFromSummary(summary, c), nil
}

// perRun returns the per-replication hook instantiating fresh stateful
// components (the uplink token bucket, the downlink loss model and the
// telemetry collector), or nil when none are configured. Telemetry attaches
// to replication 0 only: a snapshot stream is a single-trajectory view;
// cross-replication aggregates come from Simulate's Result.
func (c Config) perRun() func(int, *core.Config) error {
	if c.Uplink == nil && c.Faults == nil && c.Telemetry == nil {
		return nil
	}
	return func(rep int, cfg *core.Config) error {
		if c.Telemetry != nil && rep == 0 {
			col, err := c.Telemetry.newCollector(c.exemplarCount(), cfg.Seed)
			if err != nil {
				return err
			}
			cfg.Telemetry = col
		}
		if c.Uplink != nil {
			tb, err := uplink.NewTokenBucket(c.Uplink.Rate, c.Uplink.Burst)
			if err != nil {
				return err
			}
			cfg.Uplink = tb
		}
		if c.Faults != nil {
			lm, err := c.Faults.lossModel()
			if err != nil {
				return err
			}
			cfg.Loss = lm
		}
		return nil
	}
}

func resultFromSummary(s *sim.Summary, c Config) *Result {
	res := &Result{
		Cutoff:               s.Config.Cutoff,
		Alpha:                c.Alpha,
		TotalCost:            s.TotalCost.Mean(),
		PushBroadcasts:       s.PushBroadcasts,
		PullTransmissions:    s.PullTransmissions,
		BlockedTransmissions: s.Blocked,
		CorruptedPushes:      s.CorruptedPushes,
		CorruptedPulls:       s.CorruptedPulls,
		MeanQueueItems:       s.QueueItems.Mean(),
		Replications:         s.Replications,
	}
	res.OverallDelay, res.OverallDelayCI95 = s.OverallDelay.CI95()
	for _, cs := range s.PerClass {
		mean, ci := cs.Delay.CI95()
		res.PerClass = append(res.PerClass, ClassResult{
			Class:       cs.Class.String(),
			Weight:      cs.Weight,
			MeanDelay:   mean,
			DelayCI95:   ci,
			P95Delay:    cs.DelayHist.Percentile(95),
			Cost:        cs.Cost.Mean(),
			DropRate:    cs.DropRate.Mean(),
			Served:      cs.Served,
			Dropped:     cs.Dropped,
			Expired:     cs.Expired,
			CacheHits:   cs.CacheHits,
			UplinkLost:  cs.UplinkLost,
			Retries:     cs.Retries,
			Failed:      cs.Failed,
			Shed:        cs.Shed,
			FailureRate: cs.FailureRate.Mean(),
		})
	}
	return res
}

// OptimizeCutoff sweeps K over [kMin, kMax] by step and returns the result
// minimising the objective: "delay" (mean access time) or "cost" (total
// prioritised cost, the paper's criterion).
func OptimizeCutoff(c Config, kMin, kMax, step int, objective string) (*Result, error) {
	if step <= 0 || kMin < 0 || kMax < kMin {
		return nil, fmt.Errorf("hybridqos: invalid sweep [%d,%d] step %d", kMin, kMax, step)
	}
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	reps := c.Replications
	if reps <= 0 {
		reps = 1
	}
	ks := make([]int, 0, (kMax-kMin)/step+1)
	cfgs := make([]core.Config, 0, cap(ks))
	for k := kMin; k <= kMax; k += step {
		kCfg := cfg
		kCfg.Cutoff = k
		ks = append(ks, k)
		cfgs = append(cfgs, kCfg)
	}
	perRun := c.perRun()
	var hook func(point, rep int, kc *core.Config) error
	if perRun != nil {
		hook = func(_, rep int, kc *core.Config) error { return perRun(rep, kc) }
	}
	sums, err := sim.SweepConfigsWith(cfgs, reps, hook)
	if err != nil {
		var pe *sim.PointError
		if errors.As(err, &pe) {
			return nil, pe.Err
		}
		return nil, err
	}
	points := make([]sim.SweepPoint, len(ks))
	for i, k := range ks {
		points[i] = sim.SweepPoint{K: k, Alpha: c.Alpha, Summary: sums[i]}
	}
	var best sim.SweepPoint
	switch objective {
	case "delay":
		best, err = sim.OptimalByOverallDelay(points)
	case "cost", "":
		best, err = sim.OptimalByTotalCost(points)
	default:
		return nil, fmt.Errorf("hybridqos: unknown objective %q (want \"delay\" or \"cost\")", objective)
	}
	if err != nil {
		return nil, err
	}
	return resultFromSummary(best.Summary, c), nil
}

// ClassPrediction is one class's analytic prediction.
type ClassPrediction struct {
	// Class is the class label.
	Class string
	// Delay is the predicted mean access time.
	Delay float64
	// Cost is the prioritised cost.
	Cost float64
}

// Prediction is the analytic model evaluated at one cutoff.
type Prediction struct {
	// Cutoff is K.
	Cutoff int
	// OverallDelay is the request-weighted predicted access time.
	OverallDelay float64
	// TotalCost is Σ_c q_c·delay_c.
	TotalCost float64
	// PerClass has one entry per class.
	PerClass []ClassPrediction
}

// buildModel lowers the public Config to the refined analytic model.
func (c Config) buildModel() (analytic.Model, error) {
	cfg, err := c.build()
	if err != nil {
		return analytic.Model{}, err
	}
	return analytic.Model{
		Catalog:     cfg.Catalog,
		Classes:     cfg.Classes,
		LambdaTotal: c.Lambda,
		Alpha:       c.Alpha,
		Variant:     analytic.Refined,
	}, nil
}

// Predict evaluates the refined item-level analytic model (the one validated
// against the simulator, Figure 7) at the configured cutoff.
func Predict(c Config) (*Prediction, error) {
	model, err := c.buildModel()
	if err != nil {
		return nil, err
	}
	res, err := model.AccessTime(c.Cutoff)
	if err != nil {
		return nil, err
	}
	return predictionFrom(res), nil
}

// PredictSweep evaluates the analytic model at every cutoff in [kMin, kMax].
func PredictSweep(c Config, kMin, kMax int) ([]Prediction, error) {
	model, err := c.buildModel()
	if err != nil {
		return nil, err
	}
	results, err := model.Sweep(kMin, kMax)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(results))
	for i, r := range results {
		out[i] = *predictionFrom(r)
	}
	return out, nil
}

// PredictOptimalCutoff returns the model's cost-minimising cutoff in
// [kMin, kMax] — the cheap way to pick K before committing simulation time.
func PredictOptimalCutoff(c Config, kMin, kMax int) (*Prediction, error) {
	model, err := c.buildModel()
	if err != nil {
		return nil, err
	}
	res, err := model.OptimalCutoff(kMin, kMax, analytic.ByTotalCost)
	if err != nil {
		return nil, err
	}
	return predictionFrom(res), nil
}

func predictionFrom(r analytic.Result) *Prediction {
	p := &Prediction{Cutoff: r.K, OverallDelay: r.Overall, TotalCost: r.TotalCost}
	for _, cd := range r.PerClass {
		p.PerClass = append(p.PerClass, ClassPrediction{
			Class: cd.Class.String(),
			Delay: cd.Wait,
			Cost:  cd.Cost,
		})
	}
	return p
}

// DeviationFromPrediction compares a simulation result with the analytic
// prediction at the same cutoff and returns the worst per-class relative
// delay deviation — the paper's Figure 7 agreement metric.
func DeviationFromPrediction(r *Result, p *Prediction) (float64, error) {
	if r == nil || p == nil {
		return 0, fmt.Errorf("hybridqos: nil result or prediction")
	}
	if len(r.PerClass) != len(p.PerClass) {
		return 0, fmt.Errorf("hybridqos: class count mismatch %d vs %d", len(r.PerClass), len(p.PerClass))
	}
	worst := 0.0
	for i := range r.PerClass {
		s := r.PerClass[i].MeanDelay
		if s <= 0 || math.IsNaN(s) {
			continue
		}
		if dev := math.Abs(p.PerClass[i].Delay-s) / s; dev > worst {
			worst = dev
		}
	}
	return worst, nil
}

// WriteTrace runs ONE simulation of the configuration (replication 0's
// seed) with JSON-lines event tracing enabled and writes the trace to path.
// It returns the number of events written. The trace records every arrival,
// transmission, blocking decision and served request; internal/trace
// documents the schema. When Config.Telemetry is set the trace additionally
// carries periodic snapshot events embedding the full metrics registry —
// trace.VerifySnapshots can later audit them against an event replay.
func WriteTrace(c Config, path string) (int64, error) {
	cfg, err := c.build()
	if err != nil {
		return 0, err
	}
	if hook := c.perRun(); hook != nil {
		if err := hook(0, &cfg); err != nil {
			return 0, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	j := trace.NewJSONL(f)
	cfg.Tracer = j
	if _, err := core.Run(cfg); err != nil {
		return 0, err
	}
	if err := j.Flush(); err != nil {
		return 0, err
	}
	return j.Events(), f.Close()
}

// SpanSummary reports one reconstructed span in facade terms.
type SpanSummary struct {
	// ID is the globally unique span ID.
	ID int64
	// Class is the service class index (0 = Class-A).
	Class int
	// Item is the requested catalog rank.
	Item int
	// Verdict is the admission verdict ("pull", "push", "cache") and
	// Outcome the terminal taxonomy ("served", "expired", ...; empty for a
	// span still open at the horizon).
	Verdict, Outcome string
	// Start, End and Delay bound the request lifetime in broadcast units.
	Start, End, Delay float64
	// Segments counts the reconstructed child segments, Retries the
	// re-requests after corrupted deliveries.
	Segments, Retries int
}

// WriteSpans runs ONE simulation of the configuration (replication 0's
// seed) with span tracing enabled, reconstructs and verifies every sampled
// request's span tree, and writes the requested exports: Perfetto/Chrome
// trace-event JSON to perfettoPath and compact OTLP-style JSON to otlpPath
// (either may be empty to skip that export). Config.Spans must be set; the
// returned summaries are sorted by span start time. Reconstruction is
// audited before writing — segments must tile each request lifetime
// exactly, with durations summing to the effective delay.
func WriteSpans(c Config, perfettoPath, otlpPath string) ([]SpanSummary, error) {
	if c.Spans == nil {
		return nil, fmt.Errorf("hybridqos: Config.Spans not set")
	}
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	if hook := c.perRun(); hook != nil {
		if err := hook(0, &cfg); err != nil {
			return nil, err
		}
	}
	buf := &trace.Buffer{}
	cfg.Tracer = buf
	if _, err := core.Run(cfg); err != nil {
		return nil, err
	}
	spans, err := span.Build(buf.Events)
	if err != nil {
		return nil, err
	}
	if err := span.Verify(spans); err != nil {
		return nil, err
	}
	if perfettoPath != "" {
		if err := writeSpanFile(perfettoPath, spans, span.WritePerfetto); err != nil {
			return nil, err
		}
	}
	if otlpPath != "" {
		if err := writeSpanFile(otlpPath, spans, span.WriteOTLP); err != nil {
			return nil, err
		}
	}
	out := make([]SpanSummary, len(spans))
	for i, sp := range spans {
		out[i] = SpanSummary{
			ID: sp.ID, Class: int(sp.Class), Item: sp.Item,
			Verdict: sp.Verdict, Outcome: sp.Outcome,
			Start: sp.Start, End: sp.End, Delay: sp.Delay(),
			Segments: len(sp.Segments), Retries: sp.Retries,
		}
	}
	return out, nil
}

// writeSpanFile writes one span export to path via the given renderer.
func writeSpanFile(path string, spans []*span.Span, render func(io.Writer, []*span.Span) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AdaptivePlan is one re-optimisation outcome of an AdaptiveController.
type AdaptivePlan struct {
	// Cutoff is the recommended K.
	Cutoff int
	// Theta and Lambda are the workload estimates behind the plan.
	Theta, Lambda float64
	// PredictedCost is the model's total prioritised cost at Cutoff.
	PredictedCost float64
}

// AdaptiveController is the paper's periodic cutoff re-optimisation as an
// online component: feed it the item rank and time of every observed
// request; at each epoch boundary it fits the workload (Zipf skew by
// maximum likelihood, arrival rate) and re-plans the cutoff with the
// analytic model.
type AdaptiveController struct {
	inner *adaptive.EpochController
}

// NewAdaptiveController builds a controller for the configured system.
// epochLen is the re-planning interval in broadcast units; the controller
// starts from c.Cutoff.
func NewAdaptiveController(c Config, epochLen float64) (*AdaptiveController, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	lengths := make([]float64, cfg.Catalog.D())
	for i := range lengths {
		lengths[i] = cfg.Catalog.Length(i + 1)
	}
	planner := adaptive.Planner{
		Classes: cfg.Classes,
		Alpha:   c.Alpha,
		Lengths: lengths,
	}
	inner, err := adaptive.NewEpochController(planner, cfg.Catalog.D(), epochLen, c.Cutoff)
	if err != nil {
		return nil, err
	}
	return &AdaptiveController{inner: inner}, nil
}

// Observe feeds one request observation; it returns true when the epoch
// boundary passed and a new plan was adopted.
func (a *AdaptiveController) Observe(rank int, now float64) bool {
	return a.inner.Observe(rank, now)
}

// Cutoff returns the currently recommended cutoff.
func (a *AdaptiveController) Cutoff() int { return a.inner.Cutoff() }

// Plans returns every plan adopted so far, oldest first.
func (a *AdaptiveController) Plans() []AdaptivePlan {
	out := make([]AdaptivePlan, 0, len(a.inner.History))
	for _, p := range a.inner.History {
		out = append(out, AdaptivePlan{
			Cutoff:        p.Cutoff,
			Theta:         p.Theta,
			Lambda:        p.Lambda,
			PredictedCost: p.PredictedCost,
		})
	}
	return out
}

// ReadTraceArrivals parses a JSONL trace written by WriteTrace and returns
// the (time, item rank) sequence of request arrivals — the feed an
// AdaptiveController consumes.
func ReadTraceArrivals(path string) (times []float64, ranks []int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range events {
		if e.Kind == trace.KindArrival {
			times = append(times, e.T)
			ranks = append(ranks, e.Item)
		}
	}
	return times, ranks, nil
}

// IndexingPlan is one (1, m) air-indexing configuration's predicted
// client-side costs for push items (see internal/airindex).
type IndexingPlan struct {
	// M is the number of index segments per broadcast cycle.
	M int
	// AccessTime is the expected request-to-reception time (broadcast
	// units) under the index-first protocol.
	AccessTime float64
	// TuningTime is the expected active-listening (energy) time.
	TuningTime float64
	// DozeFraction is the fraction of the wait the receiver sleeps through.
	DozeFraction float64
}

// PlanIndexing returns the access-optimal (1, m) air-indexing plan for the
// configured push set: m* ≈ sqrt(Data/indexLen), the classic
// Imielinski–Viswanathan–Badrinath rule, evaluated on the actual catalog.
func PlanIndexing(c Config, indexLen float64) (*IndexingPlan, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	m, metrics, err := airindex.OptimalM(airindex.Config{
		Catalog:  cfg.Catalog,
		Cutoff:   c.Cutoff,
		IndexLen: indexLen,
		M:        1,
	})
	if err != nil {
		return nil, err
	}
	return &IndexingPlan{
		M:            m,
		AccessTime:   metrics.AccessTime,
		TuningTime:   metrics.TuningTime,
		DozeFraction: metrics.DozeFraction,
	}, nil
}

// SweepIndexing evaluates every index count m in [1, mMax] (clamped to the
// push set size) for the configured push set.
func SweepIndexing(c Config, indexLen float64, mMax int) ([]IndexingPlan, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	sweep, err := airindex.Sweep(airindex.Config{
		Catalog:  cfg.Catalog,
		Cutoff:   c.Cutoff,
		IndexLen: indexLen,
		M:        1,
	}, mMax)
	if err != nil {
		return nil, err
	}
	out := make([]IndexingPlan, len(sweep))
	for i, m := range sweep {
		out[i] = IndexingPlan{
			M:            i + 1,
			AccessTime:   m.AccessTime,
			TuningTime:   m.TuningTime,
			DozeFraction: m.DozeFraction,
		}
	}
	return out, nil
}

// ClosedLoopEpoch is one epoch of a closed-loop adaptive run.
type ClosedLoopEpoch struct {
	// Epoch is 0-based.
	Epoch int
	// Cutoff is the K used during the epoch.
	Cutoff int
	// OverallDelay and TotalCost are the epoch's measured metrics.
	OverallDelay, TotalCost float64
	// ThetaHat and LambdaHat are the post-epoch workload fits (0 when the
	// loop is frozen or the epoch was too sparse to fit).
	ThetaHat, LambdaHat float64
	// NextCutoff is the plan adopted for the next epoch.
	NextCutoff int
}

// RunClosedLoop executes the full §3 periodic re-optimisation loop against
// a drifting ground truth: each epoch the server runs with its current
// belief (item ranking, cutoff), the controller fits the observed workload,
// re-ranks the push set and re-plans K for the next epoch. The true
// popularity ranking rotates by shiftPerEpoch positions every epoch.
// adapt=false freezes the server after epoch 0 — the baseline an operator
// compares against.
func RunClosedLoop(c Config, epochs int, epochLen float64, shiftPerEpoch int, adapt bool) ([]ClosedLoopEpoch, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	lengths := make([]float64, cfg.Catalog.D())
	for i := range lengths {
		lengths[i] = cfg.Catalog.Length(i + 1)
	}
	results, err := adaptive.ClosedLoop(adaptive.ClosedLoopConfig{
		Lengths:       lengths,
		Classes:       cfg.Classes,
		Lambda:        c.Lambda,
		ThetaTrue:     c.Theta,
		ShiftPerEpoch: shiftPerEpoch,
		Alpha:         c.Alpha,
		InitialCutoff: c.Cutoff,
		Epochs:        epochs,
		EpochLen:      epochLen,
		Adapt:         adapt,
		Seed:          c.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([]ClosedLoopEpoch, len(results))
	for i, r := range results {
		out[i] = ClosedLoopEpoch{
			Epoch:        r.Epoch,
			Cutoff:       r.Cutoff,
			OverallDelay: r.OverallDelay,
			TotalCost:    r.TotalCost,
			ThetaHat:     r.ThetaHat,
			LambdaHat:    r.LambdaHat,
			NextCutoff:   r.NextCutoff,
		}
	}
	return out, nil
}
