package hybridqos

import (
	"fmt"
	"os"

	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
)

// TimelineArtifacts describes the files ExportTimeline wrote and the audit
// that preceded them.
type TimelineArtifacts struct {
	// Snapshots is the number of embedded telemetry snapshots, every one of
	// which was reproduced exactly by an independent event replay before any
	// artefact was written.
	Snapshots int
	// Ticks is the number of timeline rows (one per snapshot).
	Ticks int
	// Classes is the number of service classes with delay observations.
	Classes int
	// CSV, DelaySVG and QueueSVG are the written file paths.
	CSV, DelaySVG, QueueSVG string
}

// ExportTimeline reads a JSONL trace written by WriteTrace with
// Config.Telemetry set, audits every embedded snapshot bit-for-bit against an
// independent replay of the trace's events, and lowers the snapshot stream to
// time series: <prefix>.csv (per-class windowed p50/p95/p99 delay, served
// counts and queue gauges at every snapshot tick), <prefix>-delay.svg and
// <prefix>-queue.svg. It fails if the trace carries no snapshots or if any
// snapshot disagrees with the replay.
func ExportTimeline(tracePath, prefix string) (*TimelineArtifacts, error) {
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return nil, err
	}
	snaps := trace.Snapshots(events)
	if len(snaps) == 0 {
		return nil, fmt.Errorf("hybridqos: no telemetry snapshots in %s; run WriteTrace with Config.Telemetry set", tracePath)
	}
	n, err := trace.VerifySnapshots(events)
	if err != nil {
		return nil, fmt.Errorf("hybridqos: snapshot audit failed: %w", err)
	}
	tl, err := telemetry.BuildTimeline(snaps)
	if err != nil {
		return nil, err
	}
	a, err := telemetry.WriteArtifacts(tl, prefix)
	if err != nil {
		return nil, err
	}
	return &TimelineArtifacts{
		Snapshots: n,
		Ticks:     tl.Ticks(),
		Classes:   len(tl.PerClass),
		CSV:       a.CSV,
		DelaySVG:  a.DelaySVG,
		QueueSVG:  a.QueueSVG,
	}, nil
}
