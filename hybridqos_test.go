package hybridqos

import (
	"math"
	"strings"
	"testing"
)

func quickConfig() Config {
	c := PaperConfig()
	c.Horizon = 4000
	c.Replications = 2
	return c
}

func TestPaperConfigSimulates(t *testing.T) {
	r, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerClass) != 3 {
		t.Fatalf("%d classes", len(r.PerClass))
	}
	if r.PerClass[0].Class != "Class-A" || r.PerClass[2].Class != "Class-C" {
		t.Fatalf("class labels: %s, %s", r.PerClass[0].Class, r.PerClass[2].Class)
	}
	if r.OverallDelay <= 0 || math.IsNaN(r.OverallDelay) {
		t.Fatalf("overall delay %g", r.OverallDelay)
	}
	if r.Replications != 2 {
		t.Fatalf("replications %d", r.Replications)
	}
	if r.PushBroadcasts == 0 || r.PullTransmissions == 0 {
		t.Fatal("no transmissions recorded")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallDelay != b.OverallDelay || a.TotalCost != b.TotalCost {
		t.Fatal("identical configs produced different results")
	}
}

func TestSimulateClassOrdering(t *testing.T) {
	c := quickConfig()
	c.Alpha = 0.25
	c.Horizon = 12000
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.PerClass[0].MeanDelay < r.PerClass[1].MeanDelay &&
		r.PerClass[1].MeanDelay < r.PerClass[2].MeanDelay) {
		t.Fatalf("delays not ordered: %g %g %g",
			r.PerClass[0].MeanDelay, r.PerClass[1].MeanDelay, r.PerClass[2].MeanDelay)
	}
}

func TestSimulateInvalidConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumItems = 0 },
		func(c *Config) { c.Lambda = -1 },
		func(c *Config) { c.Alpha = 2 },
		func(c *Config) { c.ClassWeights = nil },
		func(c *Config) { c.ClassWeights = []float64{1, 2, 3} }, // increasing
		func(c *Config) { c.Cutoff = 101 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.PullPolicy = "nonsense" },
		func(c *Config) { c.PushScheduler = "nonsense" },
		func(c *Config) {
			c.Bandwidth = &BandwidthConfig{Total: 10, Fractions: []float64{1}, DemandMean: 1}
		}, // class arity mismatch
	}
	for i, mutate := range mutations {
		c := quickConfig()
		mutate(&c)
		if _, err := Simulate(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAllPullPolicies(t *testing.T) {
	for _, p := range []string{PolicyGamma, PolicyImportanceFactor, PolicyStretch,
		PolicyPriority, PolicyFCFS, PolicyEDF, PolicyMRF, PolicyRxW, PolicyClassicStretch} {
		c := quickConfig()
		c.PullPolicy = p
		c.Horizon = 2000
		c.Replications = 1
		if _, err := Simulate(c); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

func TestAllPushSchedulers(t *testing.T) {
	for _, p := range []string{PushRoundRobin, PushFlat, PushBroadcastDisk,
		PushSquareRoot, PushNone} {
		c := quickConfig()
		c.PushScheduler = p
		c.Horizon = 2000
		c.Replications = 1
		r, err := Simulate(c)
		if err != nil {
			t.Errorf("scheduler %s: %v", p, err)
			continue
		}
		if p == PushNone && r.PushBroadcasts != 0 {
			t.Errorf("push=none broadcast %d items", r.PushBroadcasts)
		}
	}
}

func TestPolicyRegistryExposed(t *testing.T) {
	pulls, pushes := PullPolicies(), PushSchedulers()
	for _, want := range []string{PolicyGamma, PolicyStretch, PolicyFCFS, PolicyEDF} {
		if !contains(pulls, want) {
			t.Errorf("PullPolicies() missing %q: %v", want, pulls)
		}
	}
	for _, want := range []string{PushRoundRobin, PushBroadcastDisk, PushNone} {
		if !contains(pushes, want) {
			t.Errorf("PushSchedulers() missing %q: %v", want, pushes)
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestBandwidthBlockingExposed(t *testing.T) {
	c := quickConfig()
	c.Bandwidth = &BandwidthConfig{Total: 4, Fractions: []float64{0.4, 0.3, 0.3}, DemandMean: 2}
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockedTransmissions == 0 {
		t.Fatal("starved bandwidth produced no blocking")
	}
	var dropped int64
	for _, cr := range r.PerClass {
		dropped += cr.Dropped
	}
	if dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestOptimizeCutoff(t *testing.T) {
	c := quickConfig()
	c.Horizon = 2500
	best, err := OptimizeCutoff(c, 20, 80, 30, "cost")
	if err != nil {
		t.Fatal(err)
	}
	if best.Cutoff != 20 && best.Cutoff != 50 && best.Cutoff != 80 {
		t.Fatalf("optimal cutoff %d not on sweep grid", best.Cutoff)
	}
	if _, err := OptimizeCutoff(c, 20, 80, 30, "delay"); err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeCutoff(c, 20, 80, 30, "nonsense"); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if _, err := OptimizeCutoff(c, 20, 10, 5, "cost"); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestPredictAndSweep(t *testing.T) {
	c := quickConfig()
	p, err := Predict(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cutoff != c.Cutoff || len(p.PerClass) != 3 {
		t.Fatalf("prediction shape: %+v", p)
	}
	if p.OverallDelay <= 0 {
		t.Fatalf("predicted delay %g", p.OverallDelay)
	}
	sweep, err := PredictSweep(c, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 81 {
		t.Fatalf("%d sweep points", len(sweep))
	}
	best, err := PredictOptimalCutoff(c, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		if s.TotalCost < best.TotalCost {
			t.Fatalf("PredictOptimalCutoff missed K=%d", s.Cutoff)
		}
	}
}

func TestPredictionMatchesSimulation(t *testing.T) {
	// The headline Figure-7 property via the public API: analytic within
	// 20% of simulation per class.
	c := PaperConfig()
	c.Alpha = 0.75
	c.Horizon = 15000
	c.Replications = 2
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Predict(c)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := DeviationFromPrediction(r, p)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.20 {
		t.Fatalf("model deviates %.1f%% from simulation", dev*100)
	}
}

func TestDeviationErrors(t *testing.T) {
	if _, err := DeviationFromPrediction(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	r := &Result{PerClass: make([]ClassResult, 2)}
	p := &Prediction{PerClass: make([]ClassPrediction, 3)}
	if _, err := DeviationFromPrediction(r, p); err == nil {
		t.Fatal("class mismatch accepted")
	}
}

func TestClassLabels(t *testing.T) {
	r, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"Class-A", "Class-B", "Class-C"} {
		if r.PerClass[i].Class != want {
			t.Fatalf("class %d label %q", i, r.PerClass[i].Class)
		}
		if !strings.HasPrefix(r.PerClass[i].Class, "Class-") {
			t.Fatalf("unexpected label %q", r.PerClass[i].Class)
		}
	}
}

func TestVersionSet(t *testing.T) {
	if Version == "" {
		t.Fatal("Version empty")
	}
}

func TestP95DelayExposed(t *testing.T) {
	r, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.PerClass {
		if !(c.P95Delay >= c.MeanDelay) {
			t.Fatalf("%s: P95 %g below mean %g", c.Class, c.P95Delay, c.MeanDelay)
		}
	}
}

func TestDelayHistBound(t *testing.T) {
	exact, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := quickConfig()
	c.DelayHistBound = 256
	bounded, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	// The reservoir only changes which samples back the percentile query —
	// means, counts and costs are untouched.
	if bounded.OverallDelay != exact.OverallDelay || bounded.TotalCost != exact.TotalCost {
		t.Fatal("bounded histograms perturbed aggregate results")
	}
	for i := range exact.PerClass {
		eb, bb := exact.PerClass[i], bounded.PerClass[i]
		if eb.Served != bb.Served || eb.MeanDelay != bb.MeanDelay {
			t.Fatalf("class %d aggregates differ under bounded histograms", i)
		}
		if math.IsNaN(bb.P95Delay) || bb.P95Delay <= 0 {
			t.Fatalf("class %d bounded P95 %g", i, bb.P95Delay)
		}
		// The estimate must land near the exact percentile.
		if math.Abs(bb.P95Delay-eb.P95Delay)/eb.P95Delay > 0.25 {
			t.Fatalf("class %d P95 estimate %g too far from exact %g", i, bb.P95Delay, eb.P95Delay)
		}
	}

	c.DelayHistBound = 1
	if _, err := Simulate(c); err == nil {
		t.Fatal("bound 1 accepted")
	}
}

func TestSetWorkersExposed(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d", Workers())
	}
	a, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(1)
	b, err := Simulate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallDelay != b.OverallDelay {
		t.Fatal("worker count changed results")
	}
}
