// Guards for the committed simulator hot-path baseline (BENCH_core.json):
// the file must stay parseable with the results cmd/corebench -verify
// expects, and the live engine must stay within the allocation budget the
// baseline records — the cheap regression gate for the alloc-slim hot path.
package hybridqos

import (
	"encoding/json"
	"os"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
)

// benchCoreResult mirrors cmd/corebench's Result (the command is package
// main, so the shape is re-declared here; the test fails if they drift).
type benchCoreResult struct {
	Name             string  `json:"name"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// maxAllocsPerRequest is the steady-state heap-allocation budget per
// simulated request. The pre-pooling engine sat near 2.75, the slimmed hot
// path near 1.12; with the calendar-queue event arena and the request arena
// the engine measures ~0.014, so a breach means an arena, pooling or
// histogram regression.
const maxAllocsPerRequest = 0.5

func TestBenchCoreBaselineParses(t *testing.T) {
	blob, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Description string            `json:"description"`
		Results     []benchCoreResult `json:"results"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_core.json: %v", err)
	}
	if rep.Description == "" || len(rep.Results) == 0 {
		t.Fatal("BENCH_core.json: missing description or results")
	}
	byName := map[string]benchCoreResult{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	tp, ok := byName["engine/throughput"]
	if !ok || tp.OpsPerSec <= 0 || tp.AllocsPerOp <= 0 {
		t.Fatalf("engine/throughput result missing or empty: %+v", tp)
	}
	al, ok := byName["engine/allocs"]
	if !ok || al.AllocsPerRequest <= 0 {
		t.Fatalf("engine/allocs result missing or empty: %+v", al)
	}
	if al.AllocsPerRequest > maxAllocsPerRequest {
		t.Fatalf("committed baseline records %.3f allocs/request, budget %.1f — regenerate with `go run ./cmd/corebench` only after fixing the regression",
			al.AllocsPerRequest, maxAllocsPerRequest)
	}
}

// TestAllocsPerRequestCeiling measures the live engine, not the committed
// file, so an allocation regression fails tier-1 even if BENCH_core.json is
// stale.
func TestAllocsPerRequestCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs full runs")
	}
	cfg := coreBenchConfigT(t)
	requests := cfg.Horizon * cfg.Lambda
	perRun := testing.AllocsPerRun(3, func() {
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	got := perRun / requests
	t.Logf("%.3f allocs per simulated request", got)
	if got > maxAllocsPerRequest {
		t.Fatalf("%.3f allocs/request exceeds budget %.1f", got, maxAllocsPerRequest)
	}
}

// coreBenchConfigT is benchCoreConfig's shape for tests: the paper workload
// at a shorter horizon, enough steady state for a stable allocation ratio.
func coreBenchConfigT(t *testing.T) core.Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		Horizon:        3000,
		WarmupFraction: 0.1,
		Seed:           9,
	}
}
